//! Single-precision power-of-two FFT core for the f32 fast tier.
//!
//! The f32 tier is new — there is no historical bit pattern to reproduce —
//! so **both** backends run the table-driven butterflies here: twiddles are
//! computed once in `f64` (via `cis`) and narrowed, which keeps the twiddle
//! error at one rounding instead of the ~`k` accumulated roundings a serial
//! `w *= wlen` chain would cost in single precision. The backends differ
//! only in the butterfly's multiply formula: the scalar backend always uses
//! the plain mul/add form, the vector backend uses the AVX2+FMA
//! multiversion where the CPU supports it (mirroring the f64 planned path).
//!
//! Non-power-of-two lengths widen to `f64`, run the plan-cached Bluestein
//! fallback of [`mod@crate::fft`], and narrow back — odd lengths are correct
//! but not the fast path, exactly as documented for the f64 tier.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use corrfade_linalg::kernel::{backend, Backend};
use corrfade_linalg::{Complex32, Complex64};

use crate::fft::is_power_of_two;

/// Precomputed tables for one power-of-two size: bit-reversal permutation
/// and per-stage forward twiddles, narrowed from `f64`.
#[derive(Debug)]
pub(crate) struct FftTables32 {
    pub(crate) rev: Vec<u32>,
    /// `stages[s]` holds the `2^s` twiddles of the stage with butterfly
    /// length `2^(s+1)`.
    pub(crate) stages: Vec<Vec<Complex32>>,
}

impl FftTables32 {
    fn new(n: usize) -> Self {
        debug_assert!(is_power_of_two(n));
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (bits - 1));
        }
        let mut stages = Vec::with_capacity(bits as usize);
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage: Vec<Complex32> = (0..half)
                .map(|k| {
                    Complex32::narrow(Complex64::cis(
                        -2.0 * core::f64::consts::PI * k as f64 / len as f64,
                    ))
                })
                .collect();
            stages.push(stage);
            len <<= 1;
        }
        Self { rev, stages }
    }
}

/// Process-wide f32 plan cache, independent of the f64 one (narrowed
/// twiddles are a different table).
pub(crate) fn tables32_for(n: usize) -> Arc<FftTables32> {
    static CACHE: OnceLock<RwLock<HashMap<usize, Arc<FftTables32>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(tables) = cache.read().expect("f32 FFT plan cache poisoned").get(&n) {
        return Arc::clone(tables);
    }
    let mut map = cache.write().expect("f32 FFT plan cache poisoned");
    Arc::clone(
        map.entry(n)
            .or_insert_with(|| Arc::new(FftTables32::new(n))),
    )
}

/// Table-driven bit reversal.
pub(crate) fn bit_reverse32(data: &mut [Complex32], tables: &FftTables32) {
    for i in 1..data.len() {
        let j = tables.rev[i] as usize;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Table-driven f32 butterflies over the first `nstages` stages.
#[inline(always)]
fn butterflies32_body<const FMA: bool>(
    data: &mut [Complex32],
    tables: &FftTables32,
    invert: bool,
    nstages: usize,
) {
    let n = data.len();
    let sign: f32 = if invert { -1.0 } else { 1.0 };
    for (s, stage) in tables.stages[..nstages].iter().enumerate() {
        let len = 2usize << s;
        let half = len >> 1;
        for start in (0..n).step_by(len) {
            let (lo, hi) = data[start..start + len].split_at_mut(half);
            for ((u, v), w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage.iter()) {
                let wr = w.re;
                let wi = sign * w.im;
                let (vr, vi) = if FMA {
                    (v.re.mul_add(wr, -(v.im * wi)), v.re.mul_add(wi, v.im * wr))
                } else {
                    (v.re * wr - v.im * wi, v.re * wi + v.im * wr)
                };
                let (ur, ui) = (u.re, u.im);
                u.re = ur + vr;
                u.im = ui + vi;
                v.re = ur - vr;
                v.im = ui - vi;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn butterflies32_avx2(
    data: &mut [Complex32],
    tables: &FftTables32,
    invert: bool,
    nstages: usize,
) {
    butterflies32_body::<true>(data, tables, invert, nstages);
}

/// The first `nstages` butterfly stages on an explicit backend: scalar runs
/// the plain mul/add form, vector the FMA multiversion where available. The
/// fused coloring+IDFT kernel passes `stages.len() − 1` and performs the
/// final stage itself with the matching formula.
pub(crate) fn butterflies32(
    b: Backend,
    data: &mut [Complex32],
    tables: &FftTables32,
    invert: bool,
    nstages: usize,
) {
    match b {
        Backend::Scalar => butterflies32_body::<false>(data, tables, invert, nstages),
        Backend::Vector => {
            #[cfg(target_arch = "x86_64")]
            if corrfade_linalg::kernel::vector_uses_fma() {
                // SAFETY: guarded by the kernel layer's runtime detection.
                unsafe { butterflies32_avx2(data, tables, invert, nstages) };
                return;
            }
            butterflies32_body::<false>(data, tables, invert, nstages);
        }
    }
}

std::thread_local! {
    /// Per-thread widening buffer for the non-power-of-two fallback.
    static WIDEN_WORK: core::cell::RefCell<Vec<Complex64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// In-place f32 inverse DFT (including the `1/N` factor) on the
/// process-wide kernel backend — the fast-tier sibling of
/// [`crate::fft::ifft_in_place`].
///
/// Power-of-two lengths run the table-driven f32 butterflies and are
/// steady-state allocation-free. Other lengths widen to `f64`, run the
/// plan-cached Bluestein fallback and narrow back (also allocation-free
/// once the thread-local widening buffer is warm).
pub fn ifft32_in_place(data: &mut [Complex32]) {
    ifft32_in_place_with(backend(), data);
}

/// [`ifft32_in_place`] on an explicit kernel backend.
pub fn ifft32_in_place_with(b: Backend, data: &mut [Complex32]) {
    let n = data.len();
    if n == 0 {
        return;
    }
    if is_power_of_two(n) {
        if n > 1 {
            let tables = tables32_for(n);
            bit_reverse32(data, &tables);
            let nstages = tables.stages.len();
            butterflies32(b, data, &tables, true, nstages);
        }
        let scale = 1.0f32 / n as f32;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    } else {
        WIDEN_WORK.with(|work| {
            let mut buf = work.borrow_mut();
            buf.clear();
            buf.extend(data.iter().map(|z| z.widen()));
            crate::fft::ifft_in_place_with(b, &mut buf);
            for (d, s) in data.iter_mut().zip(buf.iter()) {
                *d = Complex32::narrow(*s);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c32;

    fn test_signal32(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex32::narrow(corrfade_linalg::c64(
                    (0.3 * t).sin() + 0.1 * t.cos(),
                    (0.7 * t).cos() - 0.05 * t,
                ))
            })
            .collect()
    }

    /// f64 reference of the same narrowed input.
    fn widened(x: &[Complex32]) -> Vec<Complex64> {
        x.iter().map(|z| z.widen()).collect()
    }

    #[test]
    fn matches_f64_reference_within_f32_bounds() {
        for n in [1usize, 2, 8, 64, 1024, 4096] {
            let x = test_signal32(n);
            let mut wide = widened(&x);
            crate::fft::ifft_in_place(&mut wide);
            // The f32 bound scales with the data magnitude (the test signal
            // ramps with n); 2e-6 relative ≈ 2^-19, comfortably above the
            // per-stage rounding accumulation of log2(4096) = 12 stages.
            let peak = wide.iter().map(|z| z.abs()).fold(1.0, f64::max);
            let tol = 2e-6 * peak;
            for b in [Backend::Scalar, Backend::Vector] {
                let mut got = x.clone();
                ifft32_in_place_with(b, &mut got);
                for (g, w) in got.iter().zip(wide.iter()) {
                    let d = (g.widen() - *w).abs();
                    assert!(d <= tol, "n={n} {b:?}: {g} vs {w} (|Δ| = {d:e})");
                }
            }
        }
    }

    #[test]
    fn backends_agree_closely() {
        let x = test_signal32(512);
        let mut s = x.clone();
        let mut v = x;
        ifft32_in_place_with(Backend::Scalar, &mut s);
        ifft32_in_place_with(Backend::Vector, &mut v);
        for (a, b) in s.iter().zip(v.iter()) {
            assert!((a.re - b.re).abs() <= 1e-6 && (a.im - b.im).abs() <= 1e-6);
        }
    }

    #[test]
    fn non_pow2_fallback_matches_widened_f64_exactly() {
        // The fallback literally runs the f64 transform and narrows, so the
        // result is the correctly-rounded narrowing of the f64 answer.
        for n in [3usize, 12, 100] {
            let x = test_signal32(n);
            let mut wide = widened(&x);
            crate::fft::ifft_in_place(&mut wide);
            let mut got = x.clone();
            ifft32_in_place(&mut got);
            for (g, w) in got.iter().zip(wide.iter()) {
                assert_eq!(*g, Complex32::narrow(*w), "n = {n}");
            }
        }
    }

    #[test]
    fn empty_and_single_point() {
        let mut empty: Vec<Complex32> = Vec::new();
        ifft32_in_place(&mut empty);
        assert!(empty.is_empty());
        let mut one = vec![c32(3.0, -1.0)];
        ifft32_in_place(&mut one);
        assert_eq!(one[0], c32(3.0, -1.0));
    }
}

//! Discrete Fourier transforms.
//!
//! The Young–Beaulieu Rayleigh generator (paper ref. \[7\], used by the
//! real-time algorithm of Sec. 5) produces each fading sequence as an
//! `M`-point **inverse** DFT of Doppler-filtered complex Gaussian spectra,
//! with `M = 4096` in the paper's experiments. A radix-2 iterative
//! Cooley–Tukey transform covers every power-of-two length; Bluestein's
//! chirp-z algorithm (built on the radix-2 core) covers arbitrary lengths so
//! the library does not silently constrain the caller's choice of `M`.
//!
//! Conventions match MATLAB/NumPy:
//! `X[k] = Σ_l x[l]·e^{−i2πkl/M}` (forward), and the inverse includes the
//! `1/M` factor, `x[l] = (1/M)·Σ_k X[k]·e^{+i2πkl/M}` — the same `1/M` that
//! appears explicitly in Eq. (16)–(19) of the paper.

use corrfade_linalg::{c64, Complex64};

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `invert = false` computes the forward transform, `invert = true` the
/// unnormalized inverse (no `1/M`; [`ifft`] applies it).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
fn fft_radix2_in_place(data: &mut [Complex64], invert: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires a power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * core::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein chirp-z transform for arbitrary lengths, expressed through the
/// radix-2 core.
fn fft_bluestein(input: &[Complex64], invert: bool) -> Vec<Complex64> {
    let n = input.len();
    let sign = if invert { 1.0 } else { -1.0 };
    // Chirp: w[k] = exp(sign * i * pi * k^2 / n)
    let chirp: Vec<Complex64> = (0..n)
        .map(|k| {
            // k^2 mod 2n avoids precision loss for large k.
            let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
            Complex64::cis(sign * core::f64::consts::PI * k2 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex64::ZERO; m];
    let mut b = vec![Complex64::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }

    fft_radix2_in_place(&mut a, false);
    fft_radix2_in_place(&mut b, false);
    for k in 0..m {
        a[k] *= b[k];
    }
    fft_radix2_in_place(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

/// Forward DFT `X[k] = Σ_l x[l]·e^{−i2πkl/N}`.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if is_power_of_two(n) {
        let mut data = input.to_vec();
        fft_radix2_in_place(&mut data, false);
        data
    } else {
        fft_bluestein(input, false)
    }
}

/// Inverse DFT `x[l] = (1/N)·Σ_k X[k]·e^{+i2πkl/N}`.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if is_power_of_two(n) {
        let mut data = input.to_vec();
        fft_radix2_in_place(&mut data, true);
        data
    } else {
        fft_bluestein(input, true)
    };
    let scale = 1.0 / n as f64;
    for z in out.iter_mut() {
        *z = z.scale(scale);
    }
    out
}

/// In-place inverse DFT: overwrites `data` with its inverse transform
/// (including the `1/N` factor), numerically identical to [`ifft`].
///
/// For power-of-two lengths — the common case; the paper uses `M = 4096` —
/// this performs **no heap allocation**, which is what the streaming
/// generation hot path relies on. Other lengths fall back to the
/// (allocating) Bluestein transform and copy the result back.
pub fn ifft_in_place(data: &mut [Complex64]) {
    let n = data.len();
    if n == 0 {
        return;
    }
    if is_power_of_two(n) {
        fft_radix2_in_place(data, true);
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    } else {
        let out = ifft(data);
        data.copy_from_slice(&out);
    }
}

/// Naive `O(N²)` forward DFT — reference implementation used by the tests to
/// validate the fast transforms.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (l, &x) in input.iter().enumerate() {
                let ang = -2.0 * core::f64::consts::PI * (k as f64) * (l as f64) / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

/// Forward DFT of a real signal (convenience wrapper).
pub fn fft_real(input: &[f64]) -> Vec<Complex64> {
    fft(&input.iter().map(|&x| c64(x, 0.0)).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.approx_eq(y, tol),
                "mismatch at index {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64((0.3 * t).sin() + 0.1 * t.cos(), (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    #[test]
    fn empty_and_single_point() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        let one = vec![c64(3.0, -1.0)];
        assert_eq!(fft(&one), one);
        assert_eq!(ifft(&one), one);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = fft(&x);
        for &s in &spec {
            assert!(s.approx_eq(Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![c64(2.0, 0.0); 16];
        let spec = fft(&x);
        assert!(spec[0].approx_eq(c64(32.0, 0.0), 1e-12));
        for &s in &spec[1..] {
            assert!(s.abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let bin = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|l| Complex64::cis(2.0 * core::f64::consts::PI * bin as f64 * l as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, &s) in spec.iter().enumerate() {
            if k == bin {
                assert!(s.approx_eq(c64(n as f64, 0.0), 1e-9));
            } else {
                assert!(s.abs() < 1e-9, "leakage at bin {k}: {s}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let x = test_signal(32);
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_length() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31, 60] {
            let x = test_signal(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn round_trip_power_of_two() {
        let x = test_signal(256);
        assert_close(&ifft(&fft(&x)), &x, 1e-10);
        assert_close(&fft(&ifft(&x)), &x, 1e-10);
    }

    #[test]
    fn round_trip_arbitrary_length() {
        for n in [7usize, 12, 100, 243] {
            let x = test_signal(n);
            assert_close(&ifft(&fft(&x)), &x, 1e-8);
        }
    }

    #[test]
    fn parseval_identity() {
        let x = test_signal(128);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn linearity() {
        let x = test_signal(64);
        let y: Vec<Complex64> = test_signal(64).iter().map(|z| z.conj()).collect();
        let alpha = c64(0.3, -1.2);
        let combined: Vec<Complex64> = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx
            .iter()
            .zip(fy.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        assert_close(&lhs, &rhs, 1e-9);
    }

    #[test]
    fn real_signal_spectrum_is_conjugate_symmetric() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin()).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n {
            assert!(spec[k].approx_eq(spec[n - k].conj(), 1e-10));
        }
    }

    #[test]
    fn large_transform_round_trip() {
        // Same size as the paper's experiments (M = 4096).
        let x = test_signal(4096);
        let back = ifft(&fft(&x));
        let err: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max round-trip error {err}");
    }

    #[test]
    fn ifft_in_place_matches_ifft() {
        for n in [1usize, 8, 256, 12, 100] {
            let x = test_signal(n);
            let expected = ifft(&x);
            let mut data = x.clone();
            ifft_in_place(&mut data);
            // Power-of-two lengths share the exact code path, so the results
            // are bit-identical; Bluestein lengths go through the same
            // fallback and are too.
            assert_eq!(data, expected, "n = {n}");
        }
        let mut empty: Vec<Complex64> = Vec::new();
        ifft_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(4096));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3000));
    }
}

//! Discrete Fourier transforms.
//!
//! The Young–Beaulieu Rayleigh generator (paper ref. \[7\], used by the
//! real-time algorithm of Sec. 5) produces each fading sequence as an
//! `M`-point **inverse** DFT of Doppler-filtered complex Gaussian spectra,
//! with `M = 4096` in the paper's experiments. A radix-2 iterative
//! Cooley–Tukey transform covers every power-of-two length; Bluestein's
//! chirp-z algorithm (built on the radix-2 core) covers arbitrary lengths so
//! the library does not silently constrain the caller's choice of `M`.
//!
//! Conventions match MATLAB/NumPy:
//! `X[k] = Σ_l x[l]·e^{−i2πkl/M}` (forward), and the inverse includes the
//! `1/M` factor, `x[l] = (1/M)·Σ_k X[k]·e^{+i2πkl/M}` — the same `1/M` that
//! appears explicitly in Eq. (16)–(19) of the paper.
//!
//! # Kernel dispatch
//!
//! Every transform routes through the `corrfade_linalg::kernel` backend
//! selection (`CORRFADE_KERNEL`):
//!
//! * the **scalar** backend runs the original iterative radix-2 butterflies
//!   (twiddles advanced by repeated multiplication) and is bit-exact with
//!   every pre-kernel release;
//! * the **vector** backend uses precomputed per-stage twiddle tables
//!   (cached per size in a process-wide plan cache, so steady-state calls
//!   allocate nothing) whose butterflies have no serial twiddle dependency —
//!   they autovectorize, and on `x86_64` run as AVX2+FMA multiversions.
//!
//! Both backends agree to well below 1e-12 for unit-scale inputs; see the
//! `rfft_equivalence` test suite.
//!
//! # Real transforms
//!
//! [`rfft`] / [`irfft`] specialize the conjugate-symmetric case: a real
//! signal's spectrum satisfies `X[N−k] = conj(X[k])`, so only `N/2 + 1`
//! bins are free. Both are computed through one **half-size** complex
//! transform plus an `O(N)` untangling pass — half the work of the generic
//! path. The Doppler filter's autocorrelation kernel (Eq. 17), whose
//! spectrum `F[k]²` is real and even, uses [`irfft`].

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use corrfade_linalg::kernel::{backend, Backend};
use corrfade_linalg::{c64, Complex64};

/// Returns `true` when `n` is a power of two (and non-zero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 Cooley–Tukey FFT — the scalar reference
/// implementation (twiddles advanced by repeated multiplication, exactly as
/// in every pre-kernel release).
///
/// `invert = false` computes the forward transform, `invert = true` the
/// unnormalized inverse (no `1/M`; [`ifft`] applies it).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
fn fft_radix2_in_place(data: &mut [Complex64], invert: bool) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "radix-2 FFT requires a power-of-two length, got {n}"
    );
    if n <= 1 {
        return;
    }
    scalar_bit_reverse(data);
    scalar_butterflies(data, invert, n);
}

/// The scalar backend's bit-reversal permutation (incremental-carry form,
/// exactly as in every pre-kernel release). Shared with the fused
/// coloring+IDFT kernel in [`crate::fused`].
pub(crate) fn scalar_bit_reverse(data: &mut [Complex64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// The scalar backend's butterfly stages with lengths `2 ..= max_len`
/// (twiddles advanced by repeated multiplication — the historical serial
/// chain). Passing `max_len = n` runs the full transform; the fused
/// coloring+IDFT kernel passes `n / 2` and performs the final stage itself
/// with the identical twiddle chain, which is what keeps it bit-exact with
/// the two-pass path.
pub(crate) fn scalar_butterflies(data: &mut [Complex64], invert: bool, max_len: usize) {
    let n = data.len();
    let sign = if invert { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= max_len {
        let ang = sign * 2.0 * core::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..half {
                let u = data[start + k];
                let v = data[start + k + half] * w;
                data[start + k] = u + v;
                data[start + k + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

// ---------------------------------------------------------------------------
// Planned (table-driven) power-of-two transform — the vector backend
// ---------------------------------------------------------------------------

/// Precomputed tables for one power-of-two size: the bit-reversal
/// permutation and per-stage forward twiddle factors (`cis(−2πk/len)`, one
/// contiguous run per stage so the butterfly loop reads them stride-1).
#[derive(Debug)]
pub(crate) struct FftTables {
    pub(crate) rev: Vec<u32>,
    /// `stages[s]` holds the `2^s` twiddles of the stage with butterfly
    /// length `2^(s+1)`.
    pub(crate) stages: Vec<Vec<Complex64>>,
}

impl FftTables {
    fn new(n: usize) -> Self {
        debug_assert!(is_power_of_two(n));
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (bits - 1));
        }
        let mut stages = Vec::with_capacity(bits as usize);
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stage: Vec<Complex64> = (0..half)
                .map(|k| Complex64::cis(-2.0 * core::f64::consts::PI * k as f64 / len as f64))
                .collect();
            stages.push(stage);
            len <<= 1;
        }
        Self { rev, stages }
    }
}

/// Process-wide plan cache: tables are built once per size and shared, so
/// steady-state planned transforms perform no heap allocation. Reads take a
/// shared `RwLock` guard (the common case after warm-up — many parallel
/// workers transform concurrently without serializing on the cache); the
/// exclusive lock is only taken to insert a size seen for the first time.
pub(crate) fn tables_for(n: usize) -> Arc<FftTables> {
    static CACHE: OnceLock<RwLock<HashMap<usize, Arc<FftTables>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(tables) = cache.read().expect("FFT plan cache poisoned").get(&n) {
        return Arc::clone(tables);
    }
    let mut map = cache.write().expect("FFT plan cache poisoned");
    Arc::clone(map.entry(n).or_insert_with(|| Arc::new(FftTables::new(n))))
}

/// Table-driven butterflies over the bit-reversed data. The twiddle loads
/// are independent (no serial `w *= wlen` chain), which is what lets the
/// loop vectorize.
#[inline(always)]
fn butterflies_body<const FMA: bool>(
    data: &mut [Complex64],
    tables: &FftTables,
    invert: bool,
    nstages: usize,
) {
    let n = data.len();
    // The tables hold the forward twiddles cis(−2πk/len); the inverse
    // transform conjugates them.
    let sign = if invert { -1.0 } else { 1.0 };
    for (s, stage) in tables.stages[..nstages].iter().enumerate() {
        let len = 2usize << s;
        let half = len >> 1;
        for start in (0..n).step_by(len) {
            let (lo, hi) = data[start..start + len].split_at_mut(half);
            for ((u, v), w) in lo.iter_mut().zip(hi.iter_mut()).zip(stage.iter()) {
                let wr = w.re;
                let wi = sign * w.im;
                let (vr, vi) = if FMA {
                    (v.re.mul_add(wr, -(v.im * wi)), v.re.mul_add(wi, v.im * wr))
                } else {
                    (v.re * wr - v.im * wi, v.re * wi + v.im * wr)
                };
                let (ur, ui) = (u.re, u.im);
                u.re = ur + vr;
                u.im = ui + vi;
                v.re = ur - vr;
                v.im = ui - vi;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn butterflies_avx2(
    data: &mut [Complex64],
    tables: &FftTables,
    invert: bool,
    nstages: usize,
) {
    butterflies_body::<true>(data, tables, invert, nstages);
}

/// The planned (vector-backend) bit-reversal permutation using the cached
/// table. Shared with the fused coloring+IDFT kernel.
pub(crate) fn planned_bit_reverse(data: &mut [Complex64], tables: &FftTables) {
    for i in 1..data.len() {
        let j = tables.rev[i] as usize;
        if i < j {
            data.swap(i, j);
        }
    }
}

/// The planned butterflies over the first `nstages` stages, FMA-dispatched
/// exactly like the full planned transform. The fused coloring+IDFT kernel
/// passes `stages.len() − 1` and performs the final stage itself with the
/// same twiddle table and FMA formula, staying bit-exact with the two-pass
/// vector path.
pub(crate) fn planned_butterflies(
    data: &mut [Complex64],
    tables: &FftTables,
    invert: bool,
    nstages: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if corrfade_linalg::kernel::vector_uses_fma() {
        // SAFETY: guarded by the kernel layer's runtime AVX2+FMA detection.
        unsafe { butterflies_avx2(data, tables, invert, nstages) };
        return;
    }
    butterflies_body::<false>(data, tables, invert, nstages);
}

/// In-place planned transform (vector backend): table-driven bit reversal +
/// butterflies, AVX2+FMA multiversioned on `x86_64`.
fn fft_planned_in_place(data: &mut [Complex64], invert: bool) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let tables = tables_for(n);
    planned_bit_reverse(data, &tables);
    planned_butterflies(data, &tables, invert, tables.stages.len());
}

/// In-place power-of-two transform on an explicit backend: the scalar
/// reference butterflies or the planned table-driven ones.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
fn fft_pow2_in_place(b: Backend, data: &mut [Complex64], invert: bool) {
    match b {
        Backend::Scalar => fft_radix2_in_place(data, invert),
        Backend::Vector => {
            assert!(
                is_power_of_two(data.len()),
                "radix-2 FFT requires a power-of-two length, got {}",
                data.len()
            );
            fft_planned_in_place(data, invert);
        }
    }
}

/// Precomputed, input-independent state of one Bluestein chirp-z transform:
/// the chirp sequence and the **forward FFT of the chirp filter** `bb`,
/// which the per-call convolution only ever reads. Built once per
/// `(n, direction, backend)` and shared through [`bluestein_plan`], so a
/// steady-state non-power-of-two transform performs no trigonometry and —
/// together with the thread-local work buffer — no heap allocation.
#[derive(Debug)]
struct BluesteinPlan {
    /// Padded power-of-two convolution length `(2n − 1).next_power_of_two()`.
    m: usize,
    /// `chirp[k] = exp(sign·iπ·k²/n)`.
    chirp: Vec<Complex64>,
    /// Forward FFT (on the owning backend) of the zero-padded filter
    /// `bb[k] = conj(chirp[k])`, `bb[m − k] = conj(chirp[k])`.
    b_fft: Vec<Complex64>,
}

impl BluesteinPlan {
    fn new(b: Backend, n: usize, invert: bool) -> Self {
        let sign = if invert { 1.0 } else { -1.0 };
        // Chirp: w[k] = exp(sign * i * pi * k^2 / n)
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                // k^2 mod 2n avoids precision loss for large k.
                let k2 = ((k as u128 * k as u128) % (2 * n as u128)) as f64;
                Complex64::cis(sign * core::f64::consts::PI * k2 / n as f64)
            })
            .collect();

        let m = (2 * n - 1).next_power_of_two();
        let mut b_fft = vec![Complex64::ZERO; m];
        for k in 0..n {
            b_fft[k] = chirp[k].conj();
        }
        for k in 1..n {
            b_fft[m - k] = chirp[k].conj();
        }
        fft_pow2_in_place(b, &mut b_fft, false);
        Self { m, chirp, b_fft }
    }
}

/// Process-wide Bluestein plan cache, keyed by length, direction and
/// backend (the filter spectrum is computed through the backend's own
/// power-of-two core, so the two backends' plans differ in the last bits).
fn bluestein_plan(b: Backend, n: usize, invert: bool) -> Arc<BluesteinPlan> {
    type Key = (usize, bool, Backend);
    static CACHE: OnceLock<RwLock<HashMap<Key, Arc<BluesteinPlan>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    let key = (n, invert, b);
    if let Some(plan) = cache
        .read()
        .expect("Bluestein plan cache poisoned")
        .get(&key)
    {
        return Arc::clone(plan);
    }
    let mut map = cache.write().expect("Bluestein plan cache poisoned");
    Arc::clone(
        map.entry(key)
            .or_insert_with(|| Arc::new(BluesteinPlan::new(b, n, invert))),
    )
}

std::thread_local! {
    /// Per-thread `m`-sized work buffer of the Bluestein convolution —
    /// reused across calls so warm non-power-of-two transforms are
    /// allocation-free (pinned by the `alloc_regression` suite).
    static BLUESTEIN_WORK: core::cell::RefCell<Vec<Complex64>> =
        const { core::cell::RefCell::new(Vec::new()) };
}

/// Bluestein chirp-z transform for arbitrary lengths, expressed through the
/// power-of-two core of the given backend. Overwrites `data` with the
/// (unscaled-by-`1/n`) transform. The chirp and filter spectrum come from
/// the process-wide plan cache and the `m`-sized work buffer is
/// thread-local, so the per-call arithmetic — and its floating-point
/// operation sequence, which is identical to the historical per-call
/// construction — is all that remains.
fn fft_bluestein_into(b: Backend, data: &mut [Complex64], invert: bool) {
    let n = data.len();
    let plan = bluestein_plan(b, n, invert);
    let m = plan.m;
    BLUESTEIN_WORK.with(|work| {
        let mut a = work.borrow_mut();
        a.clear();
        a.resize(m, Complex64::ZERO);
        for k in 0..n {
            a[k] = data[k] * plan.chirp[k];
        }
        fft_pow2_in_place(b, &mut a, false);
        for k in 0..m {
            a[k] *= plan.b_fft[k];
        }
        fft_pow2_in_place(b, &mut a, true);
        let scale = 1.0 / m as f64;
        for k in 0..n {
            data[k] = a[k].scale(scale) * plan.chirp[k];
        }
    });
}

/// Forward DFT `X[k] = Σ_l x[l]·e^{−i2πkl/N}` on the process-wide kernel
/// backend.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let b = backend();
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut data = input.to_vec();
    if is_power_of_two(n) {
        fft_pow2_in_place(b, &mut data, false);
    } else {
        fft_bluestein_into(b, &mut data, false);
    }
    data
}

/// Inverse DFT `x[l] = (1/N)·Σ_k X[k]·e^{+i2πkl/N}` on the process-wide
/// kernel backend.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let b = backend();
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = input.to_vec();
    if is_power_of_two(n) {
        fft_pow2_in_place(b, &mut out, true);
    } else {
        fft_bluestein_into(b, &mut out, true);
    }
    let scale = 1.0 / n as f64;
    for z in out.iter_mut() {
        *z = z.scale(scale);
    }
    out
}

/// In-place inverse DFT: overwrites `data` with its inverse transform
/// (including the `1/N` factor), numerically identical to [`ifft`].
///
/// # Power-of-two vs. arbitrary lengths
///
/// For power-of-two lengths — the common case; the paper uses `M = 4096` —
/// the transform runs genuinely in place and performs **no steady-state
/// heap allocation** (the scalar backend allocates nothing at all; the
/// vector backend's twiddle tables are built once per size in a shared plan
/// cache and reused thereafter). This is what the streaming generation hot
/// path relies on.
///
/// Any other length falls back to the Bluestein chirp-z transform. Its
/// chirp and filter spectrum live in a process-wide plan cache (keyed by
/// length, direction and backend) and its convolution work buffer is
/// thread-local, so after the first transform of a given length **this path
/// is also steady-state allocation-free** — pinned, together with the
/// power-of-two path, by the `alloc_regression` suite. The fallback is
/// numerically identical to [`ifft`] and covered by
/// `ifft_in_place_matches_ifft` and the `bluestein_fallback_*` tests.
pub fn ifft_in_place(data: &mut [Complex64]) {
    ifft_in_place_with(backend(), data);
}

/// [`ifft_in_place`] on an explicit kernel backend — the entry point the
/// scalar-vs-vector equivalence tests and the `kernel_dispatch` benchmark
/// drive. Same allocation behavior as [`ifft_in_place`].
pub fn ifft_in_place_with(b: Backend, data: &mut [Complex64]) {
    let n = data.len();
    if n == 0 {
        return;
    }
    if is_power_of_two(n) {
        fft_pow2_in_place(b, data, true);
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    } else {
        fft_bluestein_into(b, data, true);
        let scale = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }
}

/// Naive `O(N²)` forward DFT — reference implementation used by the tests to
/// validate the fast transforms.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (l, &x) in input.iter().enumerate() {
                let ang = -2.0 * core::f64::consts::PI * (k as f64) * (l as f64) / n as f64;
                acc += x * Complex64::cis(ang);
            }
            acc
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Real (conjugate-symmetric) transforms
// ---------------------------------------------------------------------------

/// Number of spectral bins [`rfft`] produces for a real signal of length
/// `n`: `⌊n/2⌋ + 1` (the rest of the spectrum is determined by conjugate
/// symmetry).
#[inline]
#[must_use]
pub fn rfft_len(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        n / 2 + 1
    }
}

/// The `⌊n/2⌋ + 1` untangling twiddles `cis(−2πk/n)`, `k = 0 ..= n/2`,
/// cached per size in their own process-wide registry so the `O(n)`
/// rfft/irfft untangling pass performs no `sin`/`cos` calls after the
/// first transform of a size. The cache is independent of the complex-FFT
/// plan cache: it is an order of magnitude smaller than a full plan and is
/// used by every backend (the scalar FFT never needs plan tables).
fn untangle_twiddles(n: usize) -> Arc<Vec<Complex64>> {
    static CACHE: OnceLock<RwLock<HashMap<usize, Arc<Vec<Complex64>>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(tw) = cache.read().expect("untangle cache poisoned").get(&n) {
        return Arc::clone(tw);
    }
    let mut map = cache.write().expect("untangle cache poisoned");
    Arc::clone(map.entry(n).or_insert_with(|| {
        Arc::new(
            (0..=n / 2)
                .map(|k| Complex64::cis(-2.0 * core::f64::consts::PI * k as f64 / n as f64))
                .collect(),
        )
    }))
}

/// Forward DFT of a **real** signal, returning only the `⌊n/2⌋ + 1`
/// non-redundant bins `X[0] ..= X[⌊n/2⌋]` (the remaining bins satisfy
/// `X[n−k] = conj(X[k])`).
///
/// For even `n` the transform is computed through one half-size complex FFT
/// of the packed signal `z[j] = x[2j] + i·x[2j+1]` plus an `O(n)`
/// untangling pass — half the work of transforming the complexified signal.
/// Odd lengths fall back to the full complex transform and truncate.
///
/// This subsumes the old `fft_real` helper (which transformed the
/// complexified signal and returned all `n` redundant bins); reconstruct
/// the full spectrum from the conjugate symmetry if you need it.
pub fn rfft(input: &[f64]) -> Vec<Complex64> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![c64(input[0], 0.0)];
    }
    if n % 2 != 0 {
        let full = fft(&input.iter().map(|&x| c64(x, 0.0)).collect::<Vec<_>>());
        return full[..rfft_len(n)].to_vec();
    }
    let h = n / 2;
    let packed: Vec<Complex64> = (0..h)
        .map(|j| c64(input[2 * j], input[2 * j + 1]))
        .collect();
    let zf = fft(&packed);
    let tw = untangle_twiddles(n);
    let mut out = Vec::with_capacity(h + 1);
    for k in 0..=h {
        let zk = zf[k % h];
        let zs = zf[(h - k) % h].conj();
        // zf[k] = E[k] + i·O[k] with E/O the DFTs of the even/odd samples.
        let even = (zk + zs).scale(0.5);
        let t = (zk - zs).scale(0.5); // = i·O[k]
        let odd = c64(t.im, -t.re);
        out.push(even + tw[k] * odd);
    }
    out
}

/// Inverse of [`rfft`]: reconstructs the length-`n` **real** signal from
/// its `⌊n/2⌋ + 1` non-redundant spectral bins.
///
/// The spectrum is assumed conjugate-symmetric (the imaginary parts of the
/// DC and — for even `n` — Nyquist bins are taken at face value; pass a
/// genuinely Hermitian half-spectrum, e.g. one produced by [`rfft`], for an
/// exact round trip). Even lengths run through one half-size complex
/// inverse FFT; odd lengths mirror the spectrum and fall back to [`ifft`].
///
/// # Panics
/// Panics if `spectrum.len() != rfft_len(n)`.
pub fn irfft(spectrum: &[Complex64], n: usize) -> Vec<f64> {
    assert_eq!(
        spectrum.len(),
        rfft_len(n),
        "irfft: expected {} bins for a length-{n} signal, got {}",
        rfft_len(n),
        spectrum.len()
    );
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![spectrum[0].re];
    }
    if n % 2 != 0 {
        let mut full = vec![Complex64::ZERO; n];
        full[..spectrum.len()].copy_from_slice(spectrum);
        for k in spectrum.len()..n {
            full[k] = spectrum[n - k].conj();
        }
        return ifft(&full).into_iter().map(|z| z.re).collect();
    }
    let h = n / 2;
    let tw = untangle_twiddles(n);
    let mut packed = Vec::with_capacity(h);
    for k in 0..h {
        let xk = spectrum[k];
        let xs = spectrum[h - k].conj(); // = X[k + h] by conjugate symmetry
        let even = (xk + xs).scale(0.5);
        let diff = (xk - xs).scale(0.5);
        let odd = diff * tw[k].conj(); // cis(+2πk/n)
                                       // z[j] = x[2j] + i·x[2j+1] has spectrum E[k] + i·O[k].
        packed.push(even + c64(-odd.im, odd.re));
    }
    let z = ifft(&packed);
    let mut out = Vec::with_capacity(n);
    for zj in z {
        out.push(zj.re);
        out.push(zj.im);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.approx_eq(y, tol),
                "mismatch at index {i}: {x} vs {y} (tol {tol})"
            );
        }
    }

    fn test_signal(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64((0.3 * t).sin() + 0.1 * t.cos(), (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.2 * (i as f64 * 0.11).cos())
            .collect()
    }

    #[test]
    fn empty_and_single_point() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
        let one = vec![c64(3.0, -1.0)];
        assert_eq!(fft(&one), one);
        assert_eq!(ifft(&one), one);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = fft(&x);
        for &s in &spec {
            assert!(s.approx_eq(Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_signal_concentrates_at_dc() {
        let x = vec![c64(2.0, 0.0); 16];
        let spec = fft(&x);
        assert!(spec[0].approx_eq(c64(32.0, 0.0), 1e-12));
        for &s in &spec[1..] {
            assert!(s.abs() < 1e-10);
        }
    }

    #[test]
    fn single_tone_lands_in_single_bin() {
        let n = 64;
        let bin = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|l| Complex64::cis(2.0 * core::f64::consts::PI * bin as f64 * l as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, &s) in spec.iter().enumerate() {
            if k == bin {
                assert!(s.approx_eq(c64(n as f64, 0.0), 1e-9));
            } else {
                assert!(s.abs() < 1e-9, "leakage at bin {k}: {s}");
            }
        }
    }

    #[test]
    fn matches_naive_dft_power_of_two() {
        let x = test_signal(32);
        assert_close(&fft(&x), &dft_naive(&x), 1e-9);
    }

    #[test]
    fn matches_naive_dft_arbitrary_length() {
        for n in [3usize, 5, 6, 7, 12, 15, 17, 31, 60] {
            let x = test_signal(n);
            assert_close(&fft(&x), &dft_naive(&x), 1e-8);
        }
    }

    #[test]
    fn round_trip_power_of_two() {
        let x = test_signal(256);
        assert_close(&ifft(&fft(&x)), &x, 1e-10);
        assert_close(&fft(&ifft(&x)), &x, 1e-10);
    }

    #[test]
    fn round_trip_arbitrary_length() {
        for n in [7usize, 12, 100, 243] {
            let x = test_signal(n);
            assert_close(&ifft(&fft(&x)), &x, 1e-8);
        }
    }

    #[test]
    fn parseval_identity() {
        let x = test_signal(128);
        let spec = fft(&x);
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn linearity() {
        let x = test_signal(64);
        let y: Vec<Complex64> = test_signal(64).iter().map(|z| z.conj()).collect();
        let alpha = c64(0.3, -1.2);
        let combined: Vec<Complex64> = x
            .iter()
            .zip(y.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        let lhs = fft(&combined);
        let fx = fft(&x);
        let fy = fft(&y);
        let rhs: Vec<Complex64> = fx
            .iter()
            .zip(fy.iter())
            .map(|(&a, &b)| a * alpha + b)
            .collect();
        assert_close(&lhs, &rhs, 1e-9);
    }

    #[test]
    fn scalar_and_vector_backends_agree() {
        for n in [2usize, 8, 64, 1024] {
            let x = test_signal(n);
            let mut s = x.clone();
            let mut v = x.clone();
            fft_pow2_in_place(Backend::Scalar, &mut s, false);
            fft_pow2_in_place(Backend::Vector, &mut v, false);
            // Unnormalized forward spectra grow with the signal norm; the
            // ≤1e-12 contract is for unit-scale values.
            let peak = s.iter().map(|z| z.abs()).fold(1.0, f64::max);
            assert_close(&s, &v, 1e-12 * peak);

            let mut s = x.clone();
            let mut v = x;
            ifft_in_place_with(Backend::Scalar, &mut s);
            ifft_in_place_with(Backend::Vector, &mut v);
            assert_close(&s, &v, 1e-12);
        }
    }

    #[test]
    fn rfft_matches_full_transform() {
        for n in [2usize, 8, 9, 15, 16, 64, 100, 256] {
            let x = real_signal(n);
            let full = fft(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
            let half = rfft(&x);
            assert_eq!(half.len(), rfft_len(n), "n = {n}");
            assert_close(&half, &full[..rfft_len(n)], 1e-10);
        }
    }

    #[test]
    fn rfft_spectrum_determines_the_rest_by_symmetry() {
        let x = real_signal(32);
        let full = fft(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
        for k in 1..32 {
            assert!(full[k].approx_eq(full[32 - k].conj(), 1e-10));
        }
        assert!(rfft(&x)[0].im.abs() < 1e-12);
    }

    #[test]
    fn irfft_round_trips_rfft() {
        for n in [1usize, 2, 7, 8, 15, 16, 100, 256, 1000] {
            let x = real_signal(n);
            let back = irfft(&rfft(&x), n);
            assert_eq!(back.len(), n);
            for (i, (&a, &b)) in x.iter().zip(back.iter()).enumerate() {
                assert!((a - b).abs() < 1e-10, "n = {n}, index {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn irfft_matches_hermitian_ifft() {
        let n = 64;
        let x = real_signal(n);
        let half = rfft(&x);
        let mut full = vec![Complex64::ZERO; n];
        full[..half.len()].copy_from_slice(&half);
        for k in half.len()..n {
            full[k] = half[n - k].conj();
        }
        let via_ifft = ifft(&full);
        let via_irfft = irfft(&half, n);
        for (a, b) in via_ifft.iter().zip(via_irfft.iter()) {
            assert!((a.re - b).abs() < 1e-11);
            assert!(a.im.abs() < 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "irfft: expected")]
    fn irfft_checks_bin_count() {
        let _ = irfft(&[Complex64::ZERO; 4], 4);
    }

    #[test]
    fn empty_real_transforms() {
        assert!(rfft(&[]).is_empty());
        assert!(irfft(&[], 0).is_empty());
        assert_eq!(rfft_len(0), 0);
        assert_eq!(rfft_len(9), 5);
        assert_eq!(rfft_len(8), 5);
    }

    #[test]
    fn large_transform_round_trip() {
        // Same size as the paper's experiments (M = 4096).
        let x = test_signal(4096);
        let back = ifft(&fft(&x));
        let err: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max round-trip error {err}");
    }

    #[test]
    fn ifft_in_place_matches_ifft() {
        for n in [1usize, 8, 256, 12, 100] {
            let x = test_signal(n);
            let expected = ifft(&x);
            let mut data = x.clone();
            ifft_in_place(&mut data);
            // Power-of-two lengths share the exact code path, so the results
            // are bit-identical; Bluestein lengths go through the same
            // fallback and are too.
            assert_eq!(data, expected, "n = {n}");
        }
        let mut empty: Vec<Complex64> = Vec::new();
        ifft_in_place(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn bluestein_fallback_is_documented_behavior() {
        // Non-power-of-two lengths are legal for ifft_in_place: they
        // allocate internally (Bluestein) but still write the exact inverse
        // transform into the caller's buffer — on both backends, which must
        // agree with each other and with the O(N²) reference.
        for n in [3usize, 12, 100, 500] {
            let x = test_signal(n);
            let mut scalar = x.clone();
            ifft_in_place_with(Backend::Scalar, &mut scalar);
            let mut vector = x.clone();
            ifft_in_place_with(Backend::Vector, &mut vector);
            assert_close(&scalar, &vector, 1e-12);
            // Forward-transforming the inverse with the naive DFT recovers
            // the input.
            assert_close(&dft_naive(&scalar), &x, 1e-8 * n as f64);
        }
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(4096));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3000));
    }
}

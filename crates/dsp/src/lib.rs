//! # corrfade-dsp
//!
//! Signal-processing substrate of the `corrfade` workspace:
//!
//! * [`mod@fft`] — radix-2 and Bluestein forward/inverse DFTs (the paper's
//!   real-time generator is built around an `M = 4096`-point IDFT),
//! * [`doppler`] — Young's Doppler filter (paper Eq. 21), its output-variance
//!   formula (Eq. 19) and the Young–Beaulieu IDFT Rayleigh generator
//!   (paper ref. \[7\], Fig. 2) that the proposed algorithm stacks `N` of in
//!   its real-time mode (Fig. 3).

#![warn(missing_docs)]

pub mod doppler;
pub mod error;
pub mod fft;

pub use doppler::{DopplerFilter, IdftRayleighGenerator};
pub use error::DspError;
pub use fft::{dft_naive, fft, fft_real, ifft, ifft_in_place, is_power_of_two};

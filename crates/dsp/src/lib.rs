//! # corrfade-dsp
//!
//! Signal-processing substrate of the `corrfade` workspace:
//!
//! * [`mod@fft`] — radix-2 and Bluestein forward/inverse DFTs (the paper's
//!   real-time generator is built around an `M = 4096`-point IDFT) plus the
//!   real-signal [`rfft`]/[`irfft`] pair that halves the work of the
//!   conjugate-symmetric transforms; every transform dispatches through the
//!   `corrfade_linalg::kernel` backend selection (scalar reference vs.
//!   table-driven vectorized butterflies),
//! * [`mod@fft32`] — the f32 fast tier's power-of-two IDFT core (table-driven
//!   butterflies with twiddles narrowed from `f64`, own plan cache),
//! * [`fused`] — the fused coloring+IDFT kernel: the realtime hot path's
//!   final butterfly stage and coloring matvec run in one output pass, in
//!   both precisions, bit-identical to the two-pass path per backend,
//! * [`doppler`] — Young's Doppler filter (paper Eq. 21), its output-variance
//!   formula (Eq. 19) and the Young–Beaulieu IDFT Rayleigh generator
//!   (paper ref. \[7\], Fig. 2) that the proposed algorithm stacks `N` of in
//!   its real-time mode (Fig. 3).

#![warn(missing_docs)]

pub mod doppler;
pub mod error;
pub mod fft;
pub mod fft32;
pub mod fused;

pub use doppler::{DopplerFilter, IdftRayleighGenerator};
pub use error::DspError;
pub use fft::{
    dft_naive, fft, ifft, ifft_in_place, ifft_in_place_with, irfft, is_power_of_two, rfft, rfft_len,
};
pub use fft32::{ifft32_in_place, ifft32_in_place_with};
pub use fused::{
    color_idft_block, color_idft_block32, color_idft_block32_with, color_idft_block_with,
};

//! Property-based coverage of the real-FFT pair and the scalar-vs-vector
//! FFT backend equivalence:
//!
//! * `irfft(rfft(x)) ≈ x` for random real signals of random length — even
//!   (half-size fast path) and odd (mirror fallback) alike,
//! * `rfft` equals the non-redundant prefix of the full complex transform,
//! * the scalar and vector (planned, table-driven) inverse transforms agree
//!   to ≤ 1e-12 for unit-scale inputs on power-of-two and Bluestein
//!   lengths.

use corrfade_dsp::{fft, ifft_in_place_with, irfft, rfft, rfft_len};
use corrfade_linalg::{c64, Backend, Complex64};
use proptest::prelude::*;

fn rvec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0f64..1.0, len)
}

fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip through the half-spectrum representation.
    #[test]
    fn rfft_irfft_round_trip(len in 1usize..300, entries in rvec(300)) {
        let x = &entries[..len];
        let spec = rfft(x);
        prop_assert_eq!(spec.len(), rfft_len(len));
        let back = irfft(&spec, len);
        prop_assert_eq!(back.len(), len);
        for (i, (&a, &b)) in x.iter().zip(back.iter()).enumerate() {
            prop_assert!((a - b).abs() <= 1e-11, "len={len} index {i}: {a} vs {b}");
        }
    }

    /// The half spectrum is the prefix of the full complex spectrum.
    #[test]
    fn rfft_matches_complex_prefix(len in 1usize..200, entries in rvec(200)) {
        let x = &entries[..len];
        let half = rfft(x);
        let full = fft(&x.iter().map(|&v| c64(v, 0.0)).collect::<Vec<_>>());
        for (k, (&h, &f)) in half.iter().zip(full.iter()).enumerate() {
            prop_assert!(h.approx_eq(f, 1e-11), "len={len} bin {k}: {h} vs {f}");
        }
    }

    /// Scalar and vector inverse transforms agree on arbitrary lengths
    /// (powers of two hit the planned path, the rest the Bluestein
    /// fallback built on it).
    #[test]
    fn ifft_backends_agree(len in 1usize..520, entries in cvec(520)) {
        let x = &entries[..len];
        let mut s = x.to_vec();
        let mut v = x.to_vec();
        ifft_in_place_with(Backend::Scalar, &mut s);
        ifft_in_place_with(Backend::Vector, &mut v);
        for (i, (&a, &b)) in s.iter().zip(v.iter()).enumerate() {
            prop_assert!(a.approx_eq(b, 1e-12), "len={len} index {i}: {a} vs {b}");
        }
    }
}

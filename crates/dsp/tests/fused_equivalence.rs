//! Property-based coverage of the fused coloring + IDFT kernel's two
//! contracts, across random shapes rather than the handful of hand-picked
//! ones in the unit tests:
//!
//! * **bit-identity** — in both precisions and on both backends, the fused
//!   kernel's output equals the two-pass `ifft` + `color_block` composition
//!   *exactly* (`assert_eq!` on the raw values, no tolerance), for
//!   power-of-two lengths (the genuinely fused path) and non-pow2 /
//!   `m = 1` lengths (the definitional fallback) alike;
//! * **tier agreement** — the f32 fused kernel stays within the documented
//!   1e-3 absolute fast-tier bound of the f64 fused kernel for unit-scale
//!   data on every shape.

use corrfade_dsp::fused::{color_idft_block32_with, color_idft_block_with};
use corrfade_dsp::{ifft32_in_place_with, ifft_in_place_with};
use corrfade_linalg::kernel::{color_block_f32_with, color_block_with};
use corrfade_linalg::{c64, Backend, Complex32, Complex64};
use proptest::prelude::*;

fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), len)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

fn narrow(v: &[Complex64]) -> Vec<Complex32> {
    v.iter().map(|&z| Complex32::narrow(z)).collect()
}

/// Random `(n, m)` fused-block shape: small envelope counts and sample
/// counts that mix genuine powers of two (the fused final-stage path,
/// including multi-tile halves) with arbitrary lengths (the two-pass
/// fallback) and the degenerate `m = 1`.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=5, 0usize..2, 1u32..=9, 1usize..=400).prop_map(|(n, pick, exp, len)| {
        let m = if pick == 0 {
            1usize << exp // 2..=512: the genuinely fused final-stage path
        } else {
            len // mostly non-pow2 (and m = 1): the two-pass fallback
        };
        (n, m)
    })
}

const MAX_N: usize = 5;
const MAX_M: usize = 512;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The f64 fused kernel is bit-identical to the two-pass path on both
    /// backends for every shape and scale.
    #[test]
    fn fused_f64_bit_identical_to_two_pass(
        dims in shape(),
        a in cvec(MAX_N * MAX_N),
        entries in cvec(MAX_N * MAX_M),
        scale in 0.1f64..3.0,
    ) {
        let (n, m) = dims;
        let a = &a[..n * n];
        let raw = &entries[..n * m];
        for b in [Backend::Scalar, Backend::Vector] {
            let mut two_pass = raw.to_vec();
            let mut expected = vec![Complex64::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            for j in 0..n {
                ifft_in_place_with(b, &mut two_pass[j * m..(j + 1) * m]);
            }
            color_block_with(b, n, m, a, scale, &two_pass, &mut expected, &mut w, &mut s);

            let mut fused_raw = raw.to_vec();
            let mut got = vec![Complex64::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            color_idft_block_with(b, n, m, a, scale, &mut fused_raw, &mut got, &mut w, &mut s);
            prop_assert_eq!(got, expected, "{:?} n={} m={}", b, n, m);
        }
    }

    /// The f32 fused kernel is bit-identical to the two-pass f32 path on
    /// both backends for every shape and scale.
    #[test]
    fn fused_f32_bit_identical_to_two_pass(
        dims in shape(),
        a in cvec(MAX_N * MAX_N),
        entries in cvec(MAX_N * MAX_M),
        scale in 0.1f64..3.0,
    ) {
        let (n, m) = dims;
        let a = narrow(&a[..n * n]);
        let raw = narrow(&entries[..n * m]);
        let scale = scale as f32;
        for b in [Backend::Scalar, Backend::Vector] {
            let mut two_pass = raw.clone();
            let mut expected = vec![Complex32::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            for j in 0..n {
                ifft32_in_place_with(b, &mut two_pass[j * m..(j + 1) * m]);
            }
            color_block_f32_with(b, n, m, &a, scale, &two_pass, &mut expected, &mut w, &mut s);

            let mut fused_raw = raw.clone();
            let mut got = vec![Complex32::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            color_idft_block32_with(b, n, m, &a, scale, &mut fused_raw, &mut got, &mut w, &mut s);
            prop_assert_eq!(got, expected, "{:?} n={} m={}", b, n, m);
        }
    }

    /// The f32 fused kernel tracks the f64 fused kernel within the
    /// documented fast-tier bound for unit-scale data, on both backends.
    #[test]
    fn fused_f32_tracks_f64_within_tier_bound(
        dims in shape(),
        a in cvec(MAX_N * MAX_N),
        entries in cvec(MAX_N * MAX_M),
    ) {
        let (n, m) = dims;
        let a = &a[..n * n];
        let raw = &entries[..n * m];
        let mut ref_raw = raw.to_vec();
        let mut reference = vec![Complex64::ZERO; n * m];
        let (mut w, mut s) = (Vec::new(), Vec::new());
        color_idft_block_with(
            Backend::Scalar, n, m, a, 1.0, &mut ref_raw, &mut reference, &mut w, &mut s,
        );
        let (a32, raw32) = (narrow(a), narrow(raw));
        for b in [Backend::Scalar, Backend::Vector] {
            let mut raw32 = raw32.clone();
            let mut got = vec![Complex32::ZERO; n * m];
            let (mut w, mut s) = (Vec::new(), Vec::new());
            color_idft_block32_with(b, n, m, &a32, 1.0, &mut raw32, &mut got, &mut w, &mut s);
            for (i, (r, h)) in reference.iter().zip(got.iter()).enumerate() {
                let d = (*r - h.widen()).abs();
                prop_assert!(d <= 1e-3, "{b:?} n={n} m={m} index {i}: |Δ| = {d:e}");
            }
        }
    }
}

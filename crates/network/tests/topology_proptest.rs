//! Property coverage of the topology → covariance path: any random layout
//! must yield a link-field covariance the generator stack accepts.
//!
//! * pairwise correlations are finite and clamped to `[0, max_correlation]`,
//! * the covariance is Hermitian with positive diagonal,
//! * it is positive semidefinite within the eigensolver tolerance,
//! * [`link_field_covariance`] (the `CovarianceBuilder` path) and
//!   [`cached_eigen_coloring`] both succeed, i.e. the matrix is decomposable
//!   and a generator could be opened on it.

use corrfade::cached_eigen_coloring;
use corrfade_linalg::hermitian_eigen;
use corrfade_models::wsn::{
    angular_separation, link_field_covariance, LinkCorrelationModel, LogDistancePathLoss,
};
use corrfade_network::Topology;
use proptest::prelude::*;

/// Random node layout in a 10×10 field plus model parameters. Node counts up
/// to 16 with a generous radius keep the link count at or below the
/// `16·15/2 = 120` complete-graph bound while regularly exercising dense
/// fields beyond the issue's N = 64 target.
fn layout() -> impl Strategy<Value = (Vec<[f64; 2]>, f64, f64, f64)> {
    (
        proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 2..=16),
        1.0f64..6.0, // connectivity radius
        0.2f64..3.0, // decorrelation distance
        0.2f64..2.0, // angular scale (radians)
    )
        .prop_map(|(points, radius, dc, theta)| {
            let positions: Vec<[f64; 2]> = points.into_iter().map(|(x, y)| [x, y]).collect();
            (positions, radius, dc, theta)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_layouts_always_yield_a_decomposable_covariance(
        input in layout(),
    ) {
        let (positions, radius, dc, theta) = input;
        let topology = Topology::connectivity(positions.clone(), radius).unwrap();
        if topology.link_count() == 0 {
            return; // a layout with no links has nothing to decompose
        }
        let correlation = LinkCorrelationModel::new(dc, theta);
        let path_loss = LogDistancePathLoss {
            reference_snr_db: 15.0,
            reference_distance: 1.0,
            exponent: 3.0,
        };

        // Pairwise correlations are finite and clamped.
        let n = topology.link_count();
        for k in 0..n {
            for j in 0..n {
                let d = corrfade_models::wsn::distance(
                    topology.link_midpoint(k),
                    topology.link_midpoint(j),
                );
                let sep = angular_separation(
                    topology.link_orientation(k),
                    topology.link_orientation(j),
                );
                let rho = correlation.correlation(d, sep);
                prop_assert!(rho.is_finite());
                prop_assert!((-1.0..=1.0).contains(&rho), "rho out of range: {rho}");
                prop_assert!(rho >= 0.0, "exponential-decay model must be non-negative");
            }
        }

        // The builder path accepts the field...
        let k = link_field_covariance(
            &positions,
            &topology.link_pairs(),
            &correlation,
            &path_loss,
        )
        .expect("link_field_covariance must succeed on a valid layout");

        // ...the matrix is Hermitian with positive diagonal...
        prop_assert_eq!(k.rows(), n);
        for i in 0..n {
            prop_assert!(k[(i, i)].re > 0.0);
            prop_assert!(k[(i, i)].im.abs() < 1e-15);
            for j in 0..n {
                let kij = k[(i, j)];
                let kji = k[(j, i)];
                prop_assert!((kij.re - kji.re).abs() < 1e-12);
                prop_assert!((kij.im + kji.im).abs() < 1e-12);
            }
        }

        // ...positive semidefinite within tolerance...
        let eig = hermitian_eigen(&k).expect("eigendecomposition must converge");
        prop_assert!(
            eig.is_positive_semidefinite(1e-8),
            "link-field covariance lost PSD-ness"
        );

        // ...and the cached coloring (what NetworkSim opens generators from)
        // succeeds as well.
        let coloring = cached_eigen_coloring(&k).expect("coloring must succeed");
        prop_assert_eq!(coloring.dimension(), n);
    }
}

//! Lockstep-equivalence contract of [`NetworkSim`]: the simulator is a pure
//! orchestrator. Every correlated group must produce exactly the bits a
//! standalone [`RealtimeGenerator`] seeded with `shard_seed(master, leader)`
//! produces, and the result must not depend on pool size or on whether the
//! fleet is advanced sequentially or on a pool.

use corrfade::{
    cached_eigen_coloring, ChannelStream, Coloring, Precision, RealtimeConfig, RealtimeGenerator,
    SampleBlock,
};
use corrfade_models::wsn::{link_field_covariance, LinkCorrelationModel};
use corrfade_network::{shard_seed, NetworkSim, NetworkSimConfig, Topology};
use corrfade_parallel::Runtime;
use corrfade_scenarios::DopplerSettings;

const MASTER_SEED: u64 = 0x5EED_0001;
const EPOCHS: usize = 3;

fn config() -> NetworkSimConfig {
    NetworkSimConfig {
        correlation: LinkCorrelationModel::distance_only(0.8),
        correlation_threshold: 0.1,
        max_group_size: 8,
        doppler: DopplerSettings {
            idft_size: 128,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
        },
        // The CI precision matrix re-runs this suite under
        // CORRFADE_TEST_PRECISION=f32: both the fleet and the standalone
        // reference share the tier, so lockstep stays bit-exact.
        precision: Precision::from_test_env(),
        ..NetworkSimConfig::default()
    }
}

fn envelope_bits(sim: &mut NetworkSim, epochs: usize, runtime: Option<&Runtime>) -> Vec<Vec<u64>> {
    let mut per_epoch = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        match runtime {
            Some(rt) => sim.advance_on(rt).unwrap(),
            None => sim.advance_sequential().unwrap(),
        }
        let mut bits = Vec::with_capacity(sim.link_count() * 128);
        for link in 0..sim.link_count() {
            bits.extend(sim.link_envelope(link).unwrap().iter().map(|r| r.to_bits()));
        }
        per_epoch.push(bits);
    }
    per_epoch
}

#[test]
fn every_group_matches_a_standalone_generator_bit_for_bit() {
    let topology = Topology::grid(3, 3, 1.0).unwrap();
    let cfg = config();
    let probe = NetworkSim::open(topology.clone(), &cfg, MASTER_SEED).unwrap();
    assert!(probe.groups().len() > 1, "want a multi-group decomposition");

    // Reference: one standalone generator per group, seeded by the group
    // leader, driven by hand.
    let pairs = topology.link_pairs();
    for g in 0..probe.groups().len() {
        let group = probe.groups().groups()[g].clone();
        let group_pairs: Vec<(usize, usize)> = group.iter().map(|&l| pairs[l]).collect();
        let covariance = link_field_covariance(
            topology.positions(),
            &group_pairs,
            &cfg.correlation,
            &cfg.path_loss,
        )
        .unwrap();
        let coloring = cached_eigen_coloring(&covariance).unwrap();
        let mut reference = RealtimeGenerator::from_coloring(
            Coloring::clone(&coloring),
            RealtimeConfig {
                covariance,
                idft_size: cfg.doppler.idft_size,
                normalized_doppler: cfg.doppler.normalized_doppler,
                sigma_orig_sq: cfg.doppler.sigma_orig_sq,
                seed: shard_seed(MASTER_SEED, group[0] as u64),
                precision: cfg.precision,
            },
        )
        .unwrap();
        let mut expected = SampleBlock::new(group.len(), cfg.doppler.idft_size);

        let mut sim = NetworkSim::open(topology.clone(), &cfg, MASTER_SEED).unwrap();
        for _ in 0..EPOCHS {
            sim.advance().unwrap();
            reference.next_block_into(&mut expected).unwrap();
            for (offset, &link) in group.iter().enumerate() {
                let got: Vec<u64> = sim
                    .link_envelope(link)
                    .unwrap()
                    .iter()
                    .map(|r| r.to_bits())
                    .collect();
                let want: Vec<u64> = expected
                    .envelope_path(offset)
                    .iter()
                    .map(|r| r.to_bits())
                    .collect();
                assert_eq!(got, want, "group {g}, link {link} diverged");
            }
        }
    }
}

#[test]
fn pool_size_and_scheduling_mode_are_invisible() {
    let topology = Topology::grid(3, 3, 1.0).unwrap();
    let cfg = config();

    let mut sequential = NetworkSim::open(topology.clone(), &cfg, MASTER_SEED).unwrap();
    let expected = envelope_bits(&mut sequential, EPOCHS, None);

    for threads in [1usize, 2, 3] {
        let runtime = Runtime::new(threads);
        let mut sim = NetworkSim::open(topology.clone(), &cfg, MASTER_SEED).unwrap();
        let got = envelope_bits(&mut sim, EPOCHS, Some(&runtime));
        assert_eq!(
            got, expected,
            "pool of {threads} diverged from sequential execution"
        );
    }
}

#[test]
fn master_seed_changes_the_bits() {
    let topology = Topology::grid(3, 3, 1.0).unwrap();
    let cfg = config();
    let mut a = NetworkSim::open(topology.clone(), &cfg, MASTER_SEED).unwrap();
    let mut b = NetworkSim::open(topology, &cfg, MASTER_SEED + 1).unwrap();
    assert_ne!(
        envelope_bits(&mut a, 1, None),
        envelope_bits(&mut b, 1, None)
    );
}

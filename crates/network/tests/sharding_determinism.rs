//! The acceptance gate of the network layer: a 64-link topology simulated as
//! one monolithic fleet and the same topology split across 4 simulated
//! shards must yield **bit-identical** per-link envelope blocks
//! (`f64::to_bits`), on any pool size and for any scheduling mode. Group
//! seeds derive from group leaders, never from shard layout, so each shard
//! regenerates exactly the slice of the monolithic run it owns.
//!
//! CI runs this suite under both `CORRFADE_KERNEL=scalar` and
//! `CORRFADE_KERNEL=vector` (the `network-scale` job): the invariant must
//! hold within each backend.

use std::collections::BTreeMap;

use corrfade_models::wsn::LinkCorrelationModel;
use corrfade_network::{NetworkSim, NetworkSimConfig, Topology};
use corrfade_parallel::Runtime;
use corrfade_scenarios::DopplerSettings;

const MASTER_SEED: u64 = 0xC0FF_EE64;
const SHARDS: u64 = 4;
const EPOCHS: usize = 2;

/// The reference layout: 2×22 grid → exactly 64 links, decomposed into four
/// 16-link groups under this config.
fn topology() -> Topology {
    let topo = Topology::grid(2, 22, 1.0).unwrap();
    assert_eq!(topo.link_count(), 64);
    topo
}

fn config() -> NetworkSimConfig {
    NetworkSimConfig {
        correlation: LinkCorrelationModel::distance_only(0.8),
        correlation_threshold: 0.2,
        max_group_size: 16,
        doppler: DopplerSettings {
            idft_size: 128,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
        },
        ..NetworkSimConfig::default()
    }
}

/// Advances `sim` for [`EPOCHS`] epochs collecting `link → per-epoch envelope
/// bit patterns` for every link local to the sim.
fn collect_bits(sim: &mut NetworkSim, runtime: Option<&Runtime>) -> BTreeMap<usize, Vec<u64>> {
    let mut bits: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for _ in 0..EPOCHS {
        match runtime {
            Some(rt) => sim.advance_on(rt).unwrap(),
            None => sim.advance_sequential().unwrap(),
        }
        let locals = sim.local_links().to_vec();
        for link in locals {
            let trace: Vec<u64> = sim
                .link_envelope(link)
                .unwrap()
                .iter()
                .map(|r| r.to_bits())
                .collect();
            bits.entry(link).or_default().extend(trace);
        }
    }
    bits
}

#[test]
fn four_shards_reproduce_the_monolithic_run_bit_for_bit() {
    let cfg = config();
    let mut full = NetworkSim::open(topology(), &cfg, MASTER_SEED).unwrap();
    assert_eq!(
        full.groups().len(),
        4,
        "layout must decompose into 4 groups"
    );
    let reference = collect_bits(&mut full, None);
    assert_eq!(reference.len(), 64);

    let mut union: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for shard_id in 0..SHARDS {
        let mut shard =
            NetworkSim::open_shard(topology(), &cfg, MASTER_SEED, shard_id, SHARDS).unwrap();
        for (link, bits) in collect_bits(&mut shard, None) {
            assert!(
                union.insert(link, bits).is_none(),
                "link {link} simulated by two shards"
            );
        }
    }
    assert_eq!(
        union, reference,
        "union of shards diverged from the monolithic run"
    );
}

#[test]
fn sharded_runs_are_pool_size_invariant() {
    let cfg = config();
    let mut full = NetworkSim::open(topology(), &cfg, MASTER_SEED).unwrap();
    let reference = collect_bits(&mut full, None);

    for threads in [1usize, 2, 5] {
        let runtime = Runtime::new(threads);
        let mut union: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for shard_id in 0..SHARDS {
            let mut shard =
                NetworkSim::open_shard(topology(), &cfg, MASTER_SEED, shard_id, SHARDS).unwrap();
            union.extend(collect_bits(&mut shard, Some(&runtime)));
        }
        assert_eq!(
            union, reference,
            "sharded run on a pool of {threads} diverged"
        );
    }
}

#[test]
fn shard_count_is_invisible_to_the_bits() {
    // 1, 2 and 4 shards must all reassemble into the same monolithic bits.
    let cfg = config();
    let mut full = NetworkSim::open(topology(), &cfg, MASTER_SEED).unwrap();
    let reference = collect_bits(&mut full, None);

    for shard_count in [1u64, 2, 4] {
        let mut union: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for shard_id in 0..shard_count {
            let mut shard =
                NetworkSim::open_shard(topology(), &cfg, MASTER_SEED, shard_id, shard_count)
                    .unwrap();
            union.extend(collect_bits(&mut shard, None));
        }
        assert_eq!(union, reference, "{shard_count}-way sharding diverged");
    }
}

//! The network simulator: correlated groups opened on the fleet engine,
//! advanced in lockstep, with per-link SNR/outage traces.
//!
//! # Determinism contract
//!
//! Every correlated group draws its samples from a generator seeded by
//! [`shard_seed`]`(master_seed, leader)`, where the leader is the smallest
//! global link index in the group. The partition into groups is a pure
//! function of the topology and the correlation model (see
//! [`crate::partition_links`]), so:
//!
//! * the same `(topology, config, master_seed)` triple produces bit-identical
//!   per-link envelopes on any pool size, any kernel backend, and whether the
//!   fleet is advanced sequentially or on a pool;
//! * a run split across shards (`shard_id`/`shard_count`) produces, for the
//!   links it owns, exactly the bits the monolithic run produces for those
//!   links — shard assignment moves whole groups between processes but never
//!   changes their seeds.
//!
//! That second property is what makes one-fleet-per-process scale-out
//! (MPI-style, one [`NetworkSim`] per rank) a pure partitioning exercise.

use corrfade::{cached_eigen_coloring, Coloring, Precision, RealtimeConfig, RealtimeGenerator};
use corrfade_models::wsn::{link_field_covariance, LinkCorrelationModel, LogDistancePathLoss};
use corrfade_parallel::{Runtime, StreamFleet};
use corrfade_scenarios::DopplerSettings;
use corrfade_stats::fading_metrics::{
    empirical_afd_block, empirical_lcr_block, outage_count_block,
};

use crate::error::NetworkError;
use crate::groups::{partition_links, CorrelationGroups};
use crate::topology::Topology;

/// Derives the RNG seed of one shard-able unit (a correlated group, keyed by
/// its leader link index) from the master seed.
///
/// Uses a SplitMix64-style finalizer like
/// [`corrfade_parallel::chunk_seed`] but with a different odd multiplier, so
/// the network layer's seed domain never collides with the chunk/stream seed
/// domains even for equal master seeds and indices.
#[must_use]
pub fn shard_seed(master_seed: u64, shard_id: u64) -> u64 {
    let mut z = master_seed.wrapping_add(0xA076_1D64_78BD_642Fu64.wrapping_mul(shard_id + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a [`NetworkSim`]: the physical models plus the numeric
/// knobs of the group decomposition and the outage criterion.
#[derive(Debug, Clone)]
pub struct NetworkSimConfig {
    /// Spatial correlation model mapping link geometry to correlation.
    pub correlation: LinkCorrelationModel,
    /// Log-distance path loss mapping link length to mean SNR.
    pub path_loss: LogDistancePathLoss,
    /// Correlations below this value are treated as zero when partitioning
    /// links into groups. Must lie in `(0, 1]`.
    pub correlation_threshold: f64,
    /// Upper bound on the size of one correlated group (one
    /// eigendecomposition / one generator). Larger connected components are
    /// split deterministically; correlations across the split are dropped.
    pub max_group_size: usize,
    /// Doppler/IDFT settings shared by every link generator.
    pub doppler: DopplerSettings,
    /// Outage threshold: a link is in outage while its instantaneous SNR
    /// `r²` is below `10^(outage_snr_db/10)`.
    pub outage_snr_db: f64,
    /// Sample precision tier shared by every link generator (default
    /// [`Precision::F64`]; see ARCHITECTURE.md "Precision tiers"). The group
    /// covariances and their decompositions stay `f64` either way, so the
    /// decomposition cache is shared across tiers.
    pub precision: Precision,
}

impl Default for NetworkSimConfig {
    fn default() -> Self {
        Self {
            correlation: LinkCorrelationModel::distance_only(1.0),
            path_loss: LogDistancePathLoss {
                reference_snr_db: 20.0,
                reference_distance: 1.0,
                exponent: 3.0,
            },
            correlation_threshold: 0.05,
            max_group_size: 64,
            doppler: DopplerSettings::PAPER,
            outage_snr_db: 5.0,
            precision: Precision::F64,
        }
    }
}

/// Second-order per-link statistics of the most recent epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMetrics {
    /// Global link index.
    pub link: usize,
    /// Mean SNR of the link from the path-loss model, in dB.
    pub mean_snr_db: f64,
    /// Fraction of the epoch's samples spent below the outage threshold.
    pub outage_probability: f64,
    /// Empirical level-crossing rate at the outage threshold, per sample.
    pub lcr: f64,
    /// Empirical average fade duration at the outage threshold, in samples.
    pub afd: f64,
}

/// A (possibly sharded) WSN-scale simulation of correlated fading links.
pub struct NetworkSim {
    topology: Topology,
    groups: CorrelationGroups,
    /// For each global link: `(fleet stream index, offset in group)` when the
    /// link is simulated by this shard, `None` otherwise.
    placement: Vec<Option<(usize, usize)>>,
    /// Global link indices owned by this shard, ascending.
    local_links: Vec<usize>,
    fleet: StreamFleet,
    outage_threshold: f64,
    mean_snr_db: Vec<f64>,
    shard_id: u64,
    shard_count: u64,
    epoch: u64,
}

impl NetworkSim {
    /// Opens a monolithic simulation of every link in `topology` —
    /// equivalent to [`NetworkSim::open_shard`] with one shard.
    ///
    /// # Errors
    /// See [`NetworkSim::open_shard`].
    pub fn open(
        topology: Topology,
        config: &NetworkSimConfig,
        master_seed: u64,
    ) -> Result<Self, NetworkError> {
        Self::open_shard(topology, config, master_seed, 0, 1)
    }

    /// Opens shard `shard_id` of `shard_count`: correlated group `g` (in
    /// leader order) is simulated here iff `g % shard_count == shard_id`.
    /// Group seeds never depend on the shard layout, so the union of all
    /// shards reproduces the monolithic run bit for bit.
    ///
    /// # Errors
    /// [`NetworkError::ShardOutOfRange`] / [`NetworkError::InvalidParameter`]
    /// for inconsistent shard or config values,
    /// [`NetworkError::Covariance`] / [`NetworkError::Core`] when a group
    /// covariance cannot be assembled or colored.
    pub fn open_shard(
        topology: Topology,
        config: &NetworkSimConfig,
        master_seed: u64,
        shard_id: u64,
        shard_count: u64,
    ) -> Result<Self, NetworkError> {
        if shard_count == 0 {
            return Err(NetworkError::InvalidParameter {
                name: "shard_count",
                value: 0.0,
            });
        }
        if shard_id >= shard_count {
            return Err(NetworkError::ShardOutOfRange {
                shard_id,
                shard_count,
            });
        }
        if !(config.correlation_threshold > 0.0 && config.correlation_threshold <= 1.0) {
            return Err(NetworkError::InvalidParameter {
                name: "correlation_threshold",
                value: config.correlation_threshold,
            });
        }
        if config.max_group_size == 0 {
            return Err(NetworkError::InvalidParameter {
                name: "max_group_size",
                value: 0.0,
            });
        }
        if !config.outage_snr_db.is_finite() {
            return Err(NetworkError::InvalidParameter {
                name: "outage_snr_db",
                value: config.outage_snr_db,
            });
        }

        let groups = partition_links(
            &topology,
            &config.correlation,
            config.correlation_threshold,
            config.max_group_size,
        );

        let positions = topology.positions().to_vec();
        let all_pairs = topology.link_pairs();
        let mut placement: Vec<Option<(usize, usize)>> = vec![None; topology.link_count()];
        let mut local_links = Vec::new();
        let mut streams = Vec::new();
        for (g, group) in groups.groups().iter().enumerate() {
            if (g as u64) % shard_count != shard_id {
                continue;
            }
            let pairs: Vec<(usize, usize)> = group.iter().map(|&l| all_pairs[l]).collect();
            let covariance =
                link_field_covariance(&positions, &pairs, &config.correlation, &config.path_loss)?;
            let coloring = cached_eigen_coloring(&covariance)?;
            let generator = RealtimeGenerator::from_coloring(
                Coloring::clone(&coloring),
                RealtimeConfig {
                    covariance,
                    idft_size: config.doppler.idft_size,
                    normalized_doppler: config.doppler.normalized_doppler,
                    sigma_orig_sq: config.doppler.sigma_orig_sq,
                    seed: shard_seed(master_seed, groups.leader(g) as u64),
                    precision: config.precision,
                },
            )?;
            let stream_index = streams.len();
            streams.push(generator);
            for (offset, &link) in group.iter().enumerate() {
                placement[link] = Some((stream_index, offset));
                local_links.push(link);
            }
        }
        local_links.sort_unstable();

        let mean_snr_db = (0..topology.link_count())
            .map(|l| config.path_loss.mean_snr_db(topology.link_length(l)))
            .collect();
        Ok(Self {
            topology,
            groups,
            placement,
            local_links,
            fleet: StreamFleet::open_streams(streams, master_seed),
            outage_threshold: 10f64.powf(config.outage_snr_db / 20.0),
            mean_snr_db,
            shard_id,
            shard_count,
            epoch: 0,
        })
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The correlated-group partition (identical on every shard).
    pub fn groups(&self) -> &CorrelationGroups {
        &self.groups
    }

    /// This shard's id.
    pub fn shard_id(&self) -> u64 {
        self.shard_id
    }

    /// Total number of shards in the run.
    pub fn shard_count(&self) -> u64 {
        self.shard_count
    }

    /// Number of links in the whole topology (across all shards).
    pub fn link_count(&self) -> usize {
        self.topology.link_count()
    }

    /// Global indices of the links simulated by this shard, ascending.
    pub fn local_links(&self) -> &[usize] {
        &self.local_links
    }

    /// Whether global link `index` is simulated by this shard.
    pub fn is_local(&self, index: usize) -> bool {
        self.placement.get(index).is_some_and(Option::is_some)
    }

    /// Number of epochs generated so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Complex samples produced per [`NetworkSim::advance`] on this shard.
    pub fn samples_per_advance(&self) -> usize {
        self.fleet.samples_per_advance()
    }

    /// The envelope threshold `10^(outage_snr_db/20)` below which a link
    /// counts as in outage (instantaneous SNR is the squared envelope).
    pub fn outage_threshold(&self) -> f64 {
        self.outage_threshold
    }

    /// Advances every local group by one block on the global runtime.
    ///
    /// # Errors
    /// [`NetworkError::Parallel`] when a pool job panicked.
    pub fn advance(&mut self) -> Result<(), NetworkError> {
        self.advance_on(Runtime::global())
    }

    /// Advances every local group by one block on `runtime`. Bit-identical
    /// to [`NetworkSim::advance_sequential`] for any pool size.
    ///
    /// # Errors
    /// [`NetworkError::Parallel`] when a pool job panicked.
    pub fn advance_on(&mut self, runtime: &Runtime) -> Result<(), NetworkError> {
        self.fleet.advance_on(runtime)?;
        self.epoch += 1;
        Ok(())
    }

    /// Advances every local group by one block on the calling thread only.
    ///
    /// # Errors
    /// [`NetworkError::Parallel`] is structurally possible but not produced
    /// by the sequential path.
    pub fn advance_sequential(&mut self) -> Result<(), NetworkError> {
        self.fleet.advance_sequential()?;
        self.epoch += 1;
        Ok(())
    }

    fn slot(&self, index: usize) -> Result<(usize, usize), NetworkError> {
        match self.placement.get(index) {
            None => Err(NetworkError::UnknownLink {
                index,
                links: self.topology.link_count(),
            }),
            Some(None) => Err(NetworkError::LinkNotOnShard {
                index,
                shard_id: self.shard_id,
            }),
            Some(&Some(slot)) => {
                if self.epoch == 0 {
                    Err(NetworkError::NotAdvanced)
                } else {
                    Ok(slot)
                }
            }
        }
    }

    /// The envelope trace of global link `index` for the current epoch
    /// (zero-copy view into the fleet's block buffers).
    ///
    /// # Errors
    /// [`NetworkError::UnknownLink`] / [`NetworkError::LinkNotOnShard`] /
    /// [`NetworkError::NotAdvanced`].
    pub fn link_envelope(&mut self, index: usize) -> Result<&[f64], NetworkError> {
        let (stream, offset) = self.slot(index)?;
        Ok(self.fleet.block_mut(stream).envelope_path(offset))
    }

    /// Outage/LCR/AFD statistics of global link `index` over the current
    /// epoch, at unit transmit power.
    ///
    /// # Errors
    /// [`NetworkError::UnknownLink`] / [`NetworkError::LinkNotOnShard`] /
    /// [`NetworkError::NotAdvanced`].
    pub fn link_metrics(&mut self, index: usize) -> Result<LinkMetrics, NetworkError> {
        self.link_metrics_with_power(index, 1.0)
    }

    /// Like [`NetworkSim::link_metrics`] but with a transmit power gain
    /// applied to the link: scaling power by `power_gain` scales the
    /// envelope by `√power_gain`, which is evaluated (allocation-free) by
    /// dividing the outage threshold instead.
    ///
    /// # Errors
    /// [`NetworkError::InvalidParameter`] for a non-positive or non-finite
    /// `power_gain`, otherwise as [`NetworkSim::link_metrics`].
    pub fn link_metrics_with_power(
        &mut self,
        index: usize,
        power_gain: f64,
    ) -> Result<LinkMetrics, NetworkError> {
        if !power_gain.is_finite() || power_gain <= 0.0 {
            return Err(NetworkError::InvalidParameter {
                name: "power_gain",
                value: power_gain,
            });
        }
        let (stream, offset) = self.slot(index)?;
        let threshold = self.outage_threshold / power_gain.sqrt();
        let block = self.fleet.block_mut(stream);
        let samples = block.samples();
        Ok(LinkMetrics {
            link: index,
            mean_snr_db: self.mean_snr_db[index] + 10.0 * power_gain.log10(),
            outage_probability: outage_count_block(block, offset, threshold) as f64
                / samples as f64,
            lcr: empirical_lcr_block(block, offset, threshold),
            afd: empirical_afd_block(block, offset, threshold),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetworkSimConfig {
        NetworkSimConfig {
            doppler: DopplerSettings {
                idft_size: 128,
                normalized_doppler: 0.05,
                sigma_orig_sq: 0.5,
            },
            ..NetworkSimConfig::default()
        }
    }

    #[test]
    fn shard_seed_differs_from_the_chunk_seed_domain() {
        for master in [0u64, 1, 0xDEAD_BEEF] {
            for id in 0..8u64 {
                assert_ne!(
                    shard_seed(master, id),
                    corrfade_parallel::chunk_seed(master, id as usize),
                    "domain collision at master={master}, id={id}"
                );
            }
        }
        // And it separates ids for a fixed master.
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|i| shard_seed(42, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn open_rejects_inconsistent_shard_and_config_values() {
        let topo = Topology::grid(2, 2, 1.0).unwrap();
        let cfg = small_config();
        assert!(matches!(
            NetworkSim::open_shard(topo.clone(), &cfg, 1, 0, 0),
            Err(NetworkError::InvalidParameter {
                name: "shard_count",
                ..
            })
        ));
        assert!(matches!(
            NetworkSim::open_shard(topo.clone(), &cfg, 1, 3, 2),
            Err(NetworkError::ShardOutOfRange {
                shard_id: 3,
                shard_count: 2
            })
        ));
        let bad = NetworkSimConfig {
            correlation_threshold: 0.0,
            ..small_config()
        };
        assert!(matches!(
            NetworkSim::open(topo, &bad, 1),
            Err(NetworkError::InvalidParameter {
                name: "correlation_threshold",
                ..
            })
        ));
    }

    #[test]
    fn traces_require_an_advance_and_a_local_link() {
        let topo = Topology::grid(2, 2, 1.0).unwrap();
        let mut sim = NetworkSim::open(topo, &small_config(), 7).unwrap();
        assert!(matches!(
            sim.link_envelope(0),
            Err(NetworkError::NotAdvanced)
        ));
        assert!(matches!(
            sim.link_envelope(99),
            Err(NetworkError::UnknownLink { index: 99, .. })
        ));
        sim.advance_sequential().unwrap();
        assert_eq!(sim.epoch(), 1);
        let trace = sim.link_envelope(0).unwrap();
        assert_eq!(trace.len(), 128);
        assert!(trace.iter().all(|r| r.is_finite() && *r >= 0.0));
    }

    #[test]
    fn metrics_report_the_documented_quantities() {
        let topo = Topology::grid(3, 3, 1.0).unwrap();
        let mut sim = NetworkSim::open(topo, &small_config(), 11).unwrap();
        sim.advance_sequential().unwrap();
        let m = sim.link_metrics(2).unwrap();
        assert_eq!(m.link, 2);
        assert!((0.0..=1.0).contains(&m.outage_probability));
        assert!(m.lcr >= 0.0 && m.afd >= 0.0);
        // Unit-length links at reference distance sit at the reference SNR.
        assert!((m.mean_snr_db - 20.0).abs() < 1e-12);
        // More transmit power cannot increase outage, and raises mean SNR by
        // the power gain in dB.
        let boosted = sim.link_metrics_with_power(2, 10.0).unwrap();
        assert!(boosted.outage_probability <= m.outage_probability);
        assert!((boosted.mean_snr_db - (m.mean_snr_db + 10.0)).abs() < 1e-12);
        assert!(matches!(
            sim.link_metrics_with_power(2, 0.0),
            Err(NetworkError::InvalidParameter {
                name: "power_gain",
                ..
            })
        ));
    }

    #[test]
    fn shards_partition_the_link_set_without_overlap() {
        let topo = Topology::grid(2, 22, 1.0).unwrap();
        let cfg = NetworkSimConfig {
            correlation: LinkCorrelationModel::distance_only(0.8),
            correlation_threshold: 0.2,
            max_group_size: 16,
            ..small_config()
        };
        let shard_count = 4u64;
        let mut owned = vec![0usize; 64];
        for shard_id in 0..shard_count {
            let sim = NetworkSim::open_shard(topo.clone(), &cfg, 5, shard_id, shard_count).unwrap();
            assert_eq!(sim.shard_id(), shard_id);
            for &l in sim.local_links() {
                assert!(sim.is_local(l));
                owned[l] += 1;
            }
        }
        assert!(
            owned.iter().all(|&c| c == 1),
            "links not partitioned: {owned:?}"
        );
    }
}

//! Typed errors of the network layer.

use corrfade::CorrfadeError;
use corrfade_models::covariance::CovarianceBuildError;
use corrfade_parallel::ParallelError;

/// Errors produced while building or driving a network simulation.
#[derive(Debug)]
pub enum NetworkError {
    /// An explicit edge references a node that does not exist or loops on
    /// itself.
    InvalidEdge {
        /// The offending `(a, b)` pair as supplied.
        edge: (usize, usize),
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// A scalar configuration parameter is out of its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A link index is out of range for the topology.
    UnknownLink {
        /// The requested link index.
        index: usize,
        /// Number of links in the topology.
        links: usize,
    },
    /// A link exists in the topology but is not simulated by this shard.
    LinkNotOnShard {
        /// The requested link index.
        index: usize,
        /// This shard's id.
        shard_id: u64,
    },
    /// A shard id at or beyond the shard count was requested.
    ShardOutOfRange {
        /// The requested shard id.
        shard_id: u64,
        /// The total shard count.
        shard_count: u64,
    },
    /// Per-link traces were requested before the first
    /// [`crate::NetworkSim::advance`].
    NotAdvanced,
    /// Covariance assembly rejected the link field (non-finite geometry).
    Covariance(CovarianceBuildError),
    /// The generator stack rejected a group covariance.
    Core(CorrfadeError),
    /// The fleet engine failed (a job panicked on a pool executor).
    Parallel(ParallelError),
}

impl core::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NetworkError::InvalidEdge { edge, nodes } => write!(
                f,
                "edge ({}, {}) is invalid for a topology of {nodes} node(s)",
                edge.0, edge.1
            ),
            NetworkError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is out of range: {value}")
            }
            NetworkError::UnknownLink { index, links } => {
                write!(f, "link {index} is out of range ({links} link(s))")
            }
            NetworkError::LinkNotOnShard { index, shard_id } => {
                write!(f, "link {index} is not simulated by shard {shard_id}")
            }
            NetworkError::ShardOutOfRange {
                shard_id,
                shard_count,
            } => write!(
                f,
                "shard id {shard_id} is out of range for {shard_count} shard(s)"
            ),
            NetworkError::NotAdvanced => {
                write!(f, "no blocks generated yet: call advance() first")
            }
            NetworkError::Covariance(e) => write!(f, "link-field covariance: {e}"),
            NetworkError::Core(e) => write!(f, "generator: {e}"),
            NetworkError::Parallel(e) => write!(f, "fleet engine: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetworkError::Covariance(e) => Some(e),
            NetworkError::Core(e) => Some(e),
            NetworkError::Parallel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CovarianceBuildError> for NetworkError {
    fn from(e: CovarianceBuildError) -> Self {
        NetworkError::Covariance(e)
    }
}

impl From<CorrfadeError> for NetworkError {
    fn from(e: CorrfadeError) -> Self {
        NetworkError::Core(e)
    }
}

impl From<ParallelError> for NetworkError {
    fn from(e: ParallelError) -> Self {
        NetworkError::Parallel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = NetworkError::InvalidEdge {
            edge: (3, 3),
            nodes: 4,
        };
        assert!(e.to_string().contains("(3, 3)"));
        let e = NetworkError::ShardOutOfRange {
            shard_id: 5,
            shard_count: 4,
        };
        assert!(e.to_string().contains("shard id 5"));
        assert!(NetworkError::NotAdvanced.to_string().contains("advance"));
    }
}

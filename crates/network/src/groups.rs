//! Partitioning a link field into independently generated correlation groups.
//!
//! The full link-field covariance of a large deployment is sparse in
//! practice: spatial correlation decays exponentially with midpoint
//! separation, so most off-diagonal entries are negligible. Rather than
//! eigendecompose one giant matrix, the simulator drops correlations below a
//! threshold, takes connected components of the remaining "significant
//! correlation" graph, and generates each component with its own correlated
//! generator. Components larger than `max_group_size` are split into
//! consecutive chunks in link order — a documented approximation that caps
//! the cost of any single eigendecomposition while keeping the partition a
//! pure function of the topology (never of thread or shard count).
//!
//! Each group is identified by its **leader** — the smallest global link
//! index it contains. The leader keys the group's RNG seed (see
//! [`crate::shard_seed`]), which is what makes a sharded run bit-identical
//! to a monolithic one: a group's seed depends only on which links correlate,
//! not on which process simulates them.

use corrfade_models::wsn::LinkCorrelationModel;

use crate::topology::Topology;

/// The correlated groups of a link field, each a sorted list of global link
/// indices. Groups are ordered by their leader (first element), so the
/// partition itself is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelationGroups {
    groups: Vec<Vec<usize>>,
}

impl CorrelationGroups {
    /// The groups, each sorted ascending, ordered by leader link index.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the partition is empty (a topology with no links).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The leader (smallest global link index) of group `g` — the seed key
    /// of that group's generator.
    ///
    /// # Panics
    /// Panics if `g` is out of range.
    pub fn leader(&self, g: usize) -> usize {
        self.groups[g][0]
    }
}

/// Partitions the links of `topology` into correlated groups: links whose
/// pairwise spatial correlation under `correlation` is at least `threshold`
/// end up in the same group (transitively), groups larger than
/// `max_group_size` are split into consecutive chunks in ascending link
/// order.
///
/// The result depends only on the topology and the model — not on shard or
/// thread counts — which is the invariant the sharding layer builds on.
pub fn partition_links(
    topology: &Topology,
    correlation: &LinkCorrelationModel,
    threshold: f64,
    max_group_size: usize,
) -> CorrelationGroups {
    let n = topology.link_count();
    let max_group_size = max_group_size.max(1);
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let geometry: Vec<([f64; 2], f64)> = (0..n)
        .map(|i| (topology.link_midpoint(i), topology.link_orientation(i)))
        .collect();
    for k in 0..n {
        for j in (k + 1)..n {
            let d = corrfade_models::wsn::distance(geometry[k].0, geometry[j].0);
            let sep = corrfade_models::wsn::angular_separation(geometry[k].1, geometry[j].1);
            if correlation.correlation(d, sep) >= threshold {
                let (rk, rj) = (find(&mut parent, k), find(&mut parent, j));
                if rk != rj {
                    // Always hang the larger root index under the smaller so
                    // roots coincide with future leaders.
                    let (lo, hi) = (rk.min(rj), rk.max(rj));
                    parent[hi] = lo;
                }
            }
        }
    }

    // Collect components keyed by root; roots are the minimum member, so
    // iterating links in ascending order yields groups sorted by leader.
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut component_of_root: Vec<Option<usize>> = vec![None; n];
    for link in 0..n {
        let root = find(&mut parent, link);
        match component_of_root[root] {
            Some(c) => components[c].push(link),
            None => {
                component_of_root[root] = Some(components.len());
                components.push(vec![link]);
            }
        }
    }

    // Split oversized components into consecutive chunks (ascending order),
    // then restore the global leader ordering across all resulting groups.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for component in components {
        for chunk in component.chunks(max_group_size) {
            groups.push(chunk.to_vec());
        }
    }
    groups.sort_unstable_by_key(|g| g[0]);
    CorrelationGroups { groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far_apart_pair() -> Topology {
        // Two links 100 units apart: uncorrelated under any short-range model.
        Topology::from_edges(
            vec![[0.0, 0.0], [1.0, 0.0], [100.0, 0.0], [101.0, 0.0]],
            &[(0, 1), (2, 3)],
        )
        .unwrap()
    }

    #[test]
    fn distant_links_land_in_separate_groups() {
        let topo = far_apart_pair();
        let model = LinkCorrelationModel::distance_only(1.0);
        let parts = partition_links(&topo, &model, 0.05, 64);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts.groups(), &[vec![0], vec![1]]);
        assert_eq!(parts.leader(0), 0);
        assert_eq!(parts.leader(1), 1);
    }

    #[test]
    fn nearby_links_merge_transitively() {
        // Chain of three parallel links, each close to the next; the ends are
        // farther apart but must still merge through the middle.
        let topo = Topology::from_edges(
            vec![
                [0.0, 0.0],
                [1.0, 0.0],
                [0.0, 0.6],
                [1.0, 0.6],
                [0.0, 1.2],
                [1.0, 1.2],
            ],
            &[(0, 1), (2, 3), (4, 5)],
        )
        .unwrap();
        let model = LinkCorrelationModel::distance_only(0.5);
        // exp(-0.6/0.5) ≈ 0.30 between neighbours, exp(-1.2/0.5) ≈ 0.09 for
        // the ends — a threshold between the two still yields one component.
        let parts = partition_links(&topo, &model, 0.2, 64);
        assert_eq!(parts.groups(), &[vec![0, 1, 2]]);
    }

    #[test]
    fn oversized_components_split_into_ordered_chunks() {
        let topo = Topology::grid(2, 22, 1.0).unwrap();
        let model = LinkCorrelationModel::distance_only(0.8);
        let parts = partition_links(&topo, &model, 0.2, 16);
        assert_eq!(parts.len(), 4);
        for (g, group) in parts.groups().iter().enumerate() {
            assert_eq!(group.len(), 16);
            assert!(group.windows(2).all(|w| w[0] < w[1]), "group {g} unsorted");
        }
        // Every link appears exactly once across the partition.
        let mut all: Vec<usize> = parts.groups().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn partition_is_independent_of_max_group_size_when_small() {
        let topo = far_apart_pair();
        let model = LinkCorrelationModel::distance_only(1.0);
        let a = partition_links(&topo, &model, 0.05, 1);
        let b = partition_links(&topo, &model, 0.05, 1024);
        assert_eq!(a, b);
    }
}

//! Node layouts and the deterministic link set extracted from them.
//!
//! A [`Topology`] is a set of 2-D node positions plus a canonically ordered
//! list of undirected links. Every downstream artefact — covariance rows,
//! correlation groups, stream seeds, shard assignment — is keyed by a link's
//! index in this list, so the ordering contract matters: links are stored as
//! `(a, b)` with `a < b` and sorted lexicographically. The same node layout
//! therefore always produces the same link indexing, on any machine and for
//! any shard of a distributed run.

use corrfade_models::wsn::{self, links_within_radius};

use crate::error::NetworkError;

/// An undirected radio link between two nodes, stored with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    /// Lower node index.
    pub a: usize,
    /// Higher node index.
    pub b: usize,
}

/// A WSN deployment: node positions and the canonical link list.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<[f64; 2]>,
    links: Vec<Link>,
}

impl Topology {
    /// Builds a topology from explicit edges. Edges are normalized to
    /// `a < b`, deduplicated and sorted into the canonical order.
    ///
    /// # Errors
    /// [`NetworkError::InvalidEdge`] for self-loops or node indices out of
    /// range.
    pub fn from_edges(
        positions: Vec<[f64; 2]>,
        edges: &[(usize, usize)],
    ) -> Result<Self, NetworkError> {
        let nodes = positions.len();
        let mut links = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a == b || a >= nodes || b >= nodes {
                return Err(NetworkError::InvalidEdge {
                    edge: (a, b),
                    nodes,
                });
            }
            links.push(Link {
                a: a.min(b),
                b: a.max(b),
            });
        }
        links.sort_unstable_by_key(|l| (l.a, l.b));
        links.dedup();
        Ok(Self { positions, links })
    }

    /// Builds a topology by connecting every node pair within
    /// `radius` (unit-disk connectivity). Link order is the canonical
    /// lexicographic order of [`links_within_radius`].
    ///
    /// # Errors
    /// [`NetworkError::InvalidParameter`] when `radius` is not a positive
    /// finite number.
    pub fn connectivity(positions: Vec<[f64; 2]>, radius: f64) -> Result<Self, NetworkError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(NetworkError::InvalidParameter {
                name: "radius",
                value: radius,
            });
        }
        let links = links_within_radius(&positions, radius)
            .into_iter()
            .map(|(a, b)| Link { a, b })
            .collect();
        Ok(Self { positions, links })
    }

    /// A regular `nx × ny` grid with the given node spacing, connected at
    /// radius `1.25 × spacing` — nearest orthogonal neighbours only (the
    /// `√2 × spacing` diagonals stay disconnected).
    ///
    /// # Errors
    /// [`NetworkError::InvalidParameter`] for an empty grid or a non-positive
    /// spacing.
    pub fn grid(nx: usize, ny: usize, spacing: f64) -> Result<Self, NetworkError> {
        if nx == 0 || ny == 0 {
            return Err(NetworkError::InvalidParameter {
                name: "grid dimensions",
                value: (nx * ny) as f64,
            });
        }
        if !spacing.is_finite() || spacing <= 0.0 {
            return Err(NetworkError::InvalidParameter {
                name: "spacing",
                value: spacing,
            });
        }
        Self::connectivity(wsn::grid_positions(nx, ny, spacing), 1.25 * spacing)
    }

    /// Node positions, in the order links refer to them.
    pub fn positions(&self) -> &[[f64; 2]] {
        &self.positions
    }

    /// The canonical link list: `a < b`, lexicographically sorted.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Euclidean length of link `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn link_length(&self, index: usize) -> f64 {
        let l = self.links[index];
        wsn::distance(self.positions[l.a], self.positions[l.b])
    }

    /// Midpoint of link `index` — the location the spatial correlation model
    /// treats as the link's position.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn link_midpoint(&self, index: usize) -> [f64; 2] {
        let l = self.links[index];
        wsn::midpoint(self.positions[l.a], self.positions[l.b])
    }

    /// Orientation of link `index`, folded to `[0, π)`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn link_orientation(&self, index: usize) -> f64 {
        let l = self.links[index];
        wsn::link_orientation(self.positions[l.a], self.positions[l.b])
    }

    /// The canonical links as `(a, b)` pairs, the form
    /// [`corrfade_models::wsn::link_field_covariance`] consumes.
    pub fn link_pairs(&self) -> Vec<(usize, usize)> {
        self.links.iter().map(|l| (l.a, l.b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_normalizes_sorts_and_dedups() {
        let positions = vec![[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]];
        let topo = Topology::from_edges(positions, &[(2, 0), (1, 0), (0, 1), (1, 2)]).unwrap();
        let pairs: Vec<(usize, usize)> = topo.links().iter().map(|l| (l.a, l.b)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn from_edges_rejects_loops_and_out_of_range_nodes() {
        let positions = vec![[0.0, 0.0], [1.0, 0.0]];
        assert!(matches!(
            Topology::from_edges(positions.clone(), &[(0, 0)]),
            Err(NetworkError::InvalidEdge { edge: (0, 0), .. })
        ));
        assert!(matches!(
            Topology::from_edges(positions, &[(0, 5)]),
            Err(NetworkError::InvalidEdge { edge: (0, 5), .. })
        ));
    }

    #[test]
    fn grid_connects_orthogonal_neighbours_only() {
        // 4×4 grid: 12 horizontal + 12 vertical links, no diagonals.
        let topo = Topology::grid(4, 4, 1.0).unwrap();
        assert_eq!(topo.node_count(), 16);
        assert_eq!(topo.link_count(), 24);
        for i in 0..topo.link_count() {
            assert!((topo.link_length(i) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_2_by_22_has_exactly_64_links() {
        // The sharding-determinism suite relies on this layout: two columns
        // of 22 nodes → 2·21 = 42 vertical links plus 22 horizontal rungs =
        // 64 links total.
        let topo = Topology::grid(2, 22, 1.0).unwrap();
        assert_eq!(topo.link_count(), 64);
    }

    #[test]
    fn connectivity_rejects_bad_radius() {
        let positions = vec![[0.0, 0.0]];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Topology::connectivity(positions.clone(), bad),
                Err(NetworkError::InvalidParameter { name: "radius", .. })
            ));
        }
    }

    #[test]
    fn geometry_accessors_agree_with_the_wsn_primitives() {
        let topo = Topology::from_edges(vec![[0.0, 0.0], [2.0, 2.0]], &[(0, 1)]).unwrap();
        assert!((topo.link_length(0) - 8.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(topo.link_midpoint(0), [1.0, 1.0]);
        assert!((topo.link_orientation(0) - core::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }
}

//! # corrfade-network
//!
//! WSN-scale correlated-link simulation on top of the `corrfade` fleet
//! engine. The paper generates one correlated Rayleigh vector process from an
//! arbitrary covariance matrix; this crate scales that primitive to a whole
//! wireless sensor network:
//!
//! 1. [`Topology`] — node positions plus a canonically ordered link list
//!    (explicit edges, unit-disk connectivity, or a regular grid),
//! 2. the spatial correlation and path-loss models of
//!    [`corrfade_models::wsn`] map link geometry to a link-field covariance,
//! 3. [`partition_links`] decomposes the field into correlated groups
//!    (dropping sub-threshold correlations, splitting oversized components),
//! 4. [`NetworkSim`] opens one correlated generator per group on a
//!    [`corrfade_parallel::StreamFleet`] and advances all links in lockstep,
//!    serving zero-copy per-link envelope traces and outage/LCR/AFD metrics.
//!
//! Determinism is the headline property: group seeds derive from
//! [`shard_seed`]`(master_seed, leader_link_index)`, so results are
//! bit-identical across pool sizes, kernel backends, and shard layouts — a
//! run split over `n` processes reproduces the monolithic run exactly.
//!
//! ```
//! use corrfade_network::{NetworkSim, NetworkSimConfig, Topology};
//!
//! let topology = Topology::grid(4, 4, 1.0).unwrap();
//! let mut sim = NetworkSim::open(topology, &NetworkSimConfig::default(), 42).unwrap();
//! sim.advance().unwrap();
//! let metrics = sim.link_metrics(0).unwrap();
//! assert!((0.0..=1.0).contains(&metrics.outage_probability));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod groups;
pub mod sim;
pub mod topology;

pub use error::NetworkError;
pub use groups::{partition_links, CorrelationGroups};
pub use sim::{shard_seed, LinkMetrics, NetworkSim, NetworkSimConfig};
pub use topology::{Link, Topology};

//! Table-value regression tests for the special functions, against published
//! reference values (Abramowitz & Stegun tables 9.1 / 7.1 / 6.1, cross-checked
//! with an exact rational-arithmetic series evaluation). Everything is
//! asserted to 1e-10 or better — far tighter than any tolerance the fading
//! models need, so silent precision regressions surface immediately.

use corrfade_specfun::{
    bessel_j0, bessel_j1, bessel_jn, chi_square_sf, erf, erfc, gamma, gamma_p, gamma_q, ln_gamma,
    normal_cdf, rayleigh_cdf, standard_normal_cdf,
};

const TOL: f64 = 1e-10;

fn check(name: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() <= TOL,
        "{name}: got {got:.15}, reference {want:.15}, err {:.3e}",
        (got - want).abs()
    );
}

#[test]
fn bessel_j0_table() {
    check("J0(0)", bessel_j0(0.0), 1.0);
    check("J0(0.5)", bessel_j0(0.5), 0.938_469_807_240_812_9);
    check("J0(1)", bessel_j0(1.0), 0.765_197_686_557_966_6);
    check("J0(2)", bessel_j0(2.0), 0.223_890_779_141_235_67);
    check("J0(5)", bessel_j0(5.0), -0.177_596_771_314_338_3);
    check("J0(10)", bessel_j0(10.0), -0.245_935_764_451_348_35);
    // Evenness.
    check("J0(-2)", bessel_j0(-2.0), bessel_j0(2.0));
}

#[test]
fn bessel_j1_table() {
    check("J1(0)", bessel_j1(0.0), 0.0);
    check("J1(0.5)", bessel_j1(0.5), 0.242_268_457_674_873_9);
    check("J1(1)", bessel_j1(1.0), 0.440_050_585_744_933_5);
    check("J1(2)", bessel_j1(2.0), 0.576_724_807_756_873_4);
    check("J1(5)", bessel_j1(5.0), -0.327_579_137_591_465_23);
    // Oddness.
    check("J1(-2)", bessel_j1(-2.0), -bessel_j1(2.0));
}

#[test]
fn bessel_jn_table() {
    check("J2(2)", bessel_jn(2, 2.0), 0.352_834_028_615_637_73);
    check("J3(5)", bessel_jn(3, 5.0), 0.364_831_230_613_667);
    // Consistency with the dedicated orders.
    check("J0 via Jn", bessel_jn(0, 1.5), bessel_j0(1.5));
    check("J1 via Jn", bessel_jn(1, 1.5), bessel_j1(1.5));
}

#[test]
fn bessel_recurrence_holds() {
    // J_{n-1}(x) + J_{n+1}(x) = (2n/x)·J_n(x), a strong cross-check tying
    // all computed orders together.
    for &x in &[0.5, 1.0, 2.5, 5.0, 8.0] {
        for n in 1u32..6 {
            let lhs = bessel_jn(n - 1, x) + bessel_jn(n + 1, x);
            let rhs = 2.0 * n as f64 / x * bessel_jn(n, x);
            assert!(
                (lhs - rhs).abs() < 1e-10,
                "recurrence failed at n = {n}, x = {x}: {lhs} vs {rhs}"
            );
        }
    }
}

#[test]
fn erf_table() {
    check("erf(0)", erf(0.0), 0.0);
    check("erf(0.5)", erf(0.5), 0.520_499_877_813_046_5);
    check("erf(1)", erf(1.0), 0.842_700_792_949_714_9);
    check("erf(2)", erf(2.0), 0.995_322_265_018_952_7);
    check("erf(-1)", erf(-1.0), -0.842_700_792_949_714_9);
    check("erfc(2)", erfc(2.0), 0.004_677_734_981_047_265);
    // Complementarity across the argument range.
    for &x in &[0.1, 0.7, 1.3, 2.9] {
        check("erf+erfc", erf(x) + erfc(x), 1.0);
    }
}

#[test]
fn normal_and_rayleigh_cdf_reference_points() {
    check("Phi(0)", standard_normal_cdf(0.0), 0.5);
    // Phi(1.96) — the classic 97.5 % quantile point.
    check(
        "Phi(1.96)",
        standard_normal_cdf(1.96),
        0.975_002_104_851_780_2,
    );
    check("N(5,2) at 5", normal_cdf(5.0, 5.0, 2.0), 0.5);
    // Rayleigh CDF: 1 − exp(−r²/(2σ²)); at r = σ√(2 ln 2) it is 1/2.
    let sigma = 0.7;
    let median = sigma * (2.0 * 2f64.ln()).sqrt();
    check("Rayleigh median", rayleigh_cdf(median, sigma), 0.5);
}

#[test]
fn gamma_table() {
    check("Γ(0.5)", gamma(0.5), 1.772_453_850_905_515_9);
    check("Γ(1.5)", gamma(1.5), 0.886_226_925_452_758);
    check("Γ(5)", gamma(5.0), 24.0);
    check("Γ(1)", gamma(1.0), 1.0);
    check("lnΓ(10)", ln_gamma(10.0), 12.801_827_480_081_467);
    // Reflection-free consistency: Γ(x+1) = x·Γ(x).
    for &x in &[0.25, 1.3, 3.7, 6.1] {
        assert!(
            (gamma(x + 1.0) - x * gamma(x)).abs() <= 1e-10 * gamma(x + 1.0).abs(),
            "recurrence failed at x = {x}"
        );
    }
}

#[test]
fn incomplete_gamma_table() {
    // P(1, x) = 1 − e^{−x}.
    check("P(1,1)", gamma_p(1.0, 1.0), 0.632_120_558_828_557_7);
    check("Q(1,1)", gamma_q(1.0, 1.0), 1.0 - 0.632_120_558_828_557_7);
    // P + Q = 1 everywhere.
    for &(a, x) in &[(0.5, 0.2), (2.0, 3.0), (7.5, 6.0)] {
        check("P+Q", gamma_p(a, x) + gamma_q(a, x), 1.0);
    }
}

#[test]
fn chi_square_sf_closed_forms() {
    // For k = 2 degrees of freedom the survival function is exactly
    // e^{−x/2}.
    check("χ²(2) sf at 3", chi_square_sf(3.0, 2.0), (-1.5f64).exp());
    check("χ²(2) sf at 0", chi_square_sf(0.0, 2.0), 1.0);
    // For k = 4: (1 + x/2)·e^{−x/2}.
    let x = 5.0;
    check(
        "χ²(4) sf at 5",
        chi_square_sf(x, 4.0),
        (1.0 + x / 2.0) * (-x / 2.0).exp(),
    );
}

//! Gamma function, log-gamma and regularized incomplete gamma functions.
//!
//! Needed by the statistics crate for chi-square goodness-of-fit p-values
//! (via `Q(k/2, x/2)`) and for the theoretical moments of the Rayleigh
//! distribution used when validating Eq. (14)–(15) of the paper.

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        let pi = core::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)`, for `a > 0`, `x ≥ 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)` (modified Lentz),
/// convergent for `x ≥ a + 1`.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-square distribution with `k` degrees of
/// freedom: `Pr[X > x] = Q(k/2, x/2)`.
pub fn chi_square_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi_square_sf requires k > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(0.5 * k, 0.5 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_of_integers_is_factorial() {
        let mut fact = 1.0;
        for n in 1..12u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                (gamma(n as f64) - fact).abs() / fact < 1e-12,
                "Gamma({n}) = {}, expected {fact}",
                gamma(n as f64)
            );
        }
    }

    #[test]
    fn gamma_half_integer() {
        let sqrt_pi = core::f64::consts::PI.sqrt();
        assert!((gamma(0.5) - sqrt_pi).abs() < 1e-12);
        assert!((gamma(1.5) - 0.5 * sqrt_pi).abs() < 1e-12);
        assert!((gamma(2.5) - 0.75 * sqrt_pi).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_matches_gamma() {
        for &x in &[0.1, 0.9, 2.3, 7.7, 15.0, 40.0] {
            assert!((ln_gamma(x) - gamma(x).ln()).abs() < 1e-9 * ln_gamma(x).abs().max(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!((gamma_p(1.5, 200.0) - 1.0).abs() < 1e-12);
        assert!(gamma_q(1.5, 200.0) < 1e-12);
    }

    #[test]
    fn p_plus_q_is_one() {
        for &a in &[0.5, 1.0, 2.5, 7.0] {
            for &x in &[0.1, 1.0, 3.0, 10.0, 30.0] {
                assert!(
                    (gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12,
                    "P+Q != 1 at a={a}, x={x}"
                );
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.2, 1.0, 2.5, 8.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn chi_square_reference_values() {
        // scipy.stats.chi2.sf reference values.
        let cases = [
            (3.841458820694124, 1.0, 0.05),
            (5.991464547107979, 2.0, 0.05),
            (7.814727903251179, 3.0, 0.05),
            (16.918977604620448, 9.0, 0.05),
            (2.705543454095404, 1.0, 0.10),
        ];
        for (x, k, p) in cases {
            assert!(
                (chi_square_sf(x, k) - p).abs() < 1e-9,
                "chi2_sf({x}, {k}) = {}, expected {p}",
                chi_square_sf(x, k)
            );
        }
        assert_eq!(chi_square_sf(-1.0, 3.0), 1.0);
    }
}

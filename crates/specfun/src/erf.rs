//! Error function and related helpers.
//!
//! Used by the statistics crate for normal-distribution goodness-of-fit
//! checks on the real/imaginary parts of the generated complex Gaussian
//! variables (they must be `N(0, σ²/2)` for the envelopes to be Rayleigh).

use crate::gamma::{gamma_p, gamma_q};

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, accurate for
/// large positive `x` where `erf(x) → 1`.
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// CDF of the standard normal distribution.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / core::f64::consts::SQRT_2)
}

/// CDF of a zero-mean normal distribution with standard deviation `sigma`.
pub fn normal_cdf(x: f64, mean: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "normal_cdf requires sigma > 0");
    standard_normal_cdf((x - mean) / sigma)
}

/// CDF of the Rayleigh distribution with scale `sigma` (mode):
/// `F(r) = 1 − exp(−r²/(2σ²))` for `r ≥ 0`.
///
/// In the paper's notation an envelope `r = |z|` of a complex Gaussian with
/// total variance `σg²` is Rayleigh with scale `σ = σg/√2`.
pub fn rayleigh_cdf(r: f64, sigma: f64) -> f64 {
    assert!(sigma > 0.0, "rayleigh_cdf requires sigma > 0");
    if r <= 0.0 {
        0.0
    } else {
        -(-r * r / (2.0 * sigma * sigma)).exp_m1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun Table 7.1 / scipy.special.erf
        let cases = [
            (0.0, 0.0),
            (0.1, 0.112462916018285),
            (0.5, 0.520499877813047),
            (1.0, 0.842700792949715),
            (1.5, 0.966105146475311),
            (2.0, 0.995322265018953),
            (3.0, 0.999977909503001),
        ];
        for (x, expected) in cases {
            assert!(
                (erf(x) - expected).abs() < 1e-10,
                "erf({x}) = {}, expected {expected}",
                erf(x)
            );
            assert!((erf(-x) + expected).abs() < 1e-10, "erf must be odd");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.5, 0.0, 0.3, 1.0, 2.5, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_tail_accuracy() {
        // scipy.special.erfc(5) = 1.5374597944280347e-12
        assert!((erfc(5.0) - 1.537459794428035e-12).abs() < 1e-24);
    }

    #[test]
    fn standard_normal_cdf_values() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((standard_normal_cdf(1.959963984540054) - 0.975).abs() < 1e-10);
        assert!((standard_normal_cdf(-1.959963984540054) - 0.025).abs() < 1e-10);
        assert!((normal_cdf(2.0, 1.0, 0.5) - standard_normal_cdf(2.0)).abs() < 1e-14);
    }

    #[test]
    fn rayleigh_cdf_properties() {
        assert_eq!(rayleigh_cdf(-1.0, 1.0), 0.0);
        assert_eq!(rayleigh_cdf(0.0, 1.0), 0.0);
        // Median of Rayleigh(sigma) is sigma*sqrt(2 ln 2).
        let sigma = 1.7;
        let median = sigma * (2.0f64 * (2.0f64).ln()).sqrt();
        assert!((rayleigh_cdf(median, sigma) - 0.5).abs() < 1e-12);
        assert!(rayleigh_cdf(1e9, sigma) <= 1.0);
        assert!((rayleigh_cdf(1e3, sigma) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sigma > 0")]
    fn rayleigh_cdf_rejects_bad_sigma() {
        let _ = rayleigh_cdf(1.0, 0.0);
    }
}

//! # corrfade-specfun
//!
//! Special functions required by the correlated Rayleigh-fading models:
//!
//! * Bessel functions of the first kind `J₀`, `J₁`, `Jₙ`
//!   ([`bessel`]) — the spectral covariance of Eq. (3), the spatial
//!   covariance series of Eq. (5)–(6) and the Doppler autocorrelation
//!   target `J₀(2π·fm·d)` of Eq. (20) of the paper,
//! * gamma / incomplete-gamma functions ([`mod@gamma`]) — chi-square
//!   goodness-of-fit p-values used to validate the generated envelopes,
//! * error function and the normal / Rayleigh CDFs ([`mod@erf`]) —
//!   Kolmogorov–Smirnov tests on the marginals.
//!
//! Everything is implemented from scratch (series, asymptotic expansions,
//! Lanczos approximation, Lentz continued fractions) because no numerical
//! special-function crate is available in the offline dependency set.

#![warn(missing_docs)]

pub mod bessel;
pub mod erf;
pub mod gamma;

pub use bessel::{bessel_j0, bessel_j1, bessel_jn};
pub use erf::{erf, erfc, normal_cdf, rayleigh_cdf, standard_normal_cdf};
pub use gamma::{chi_square_sf, gamma, gamma_p, gamma_q, ln_gamma};

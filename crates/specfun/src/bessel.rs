//! Bessel functions of the first kind, `J₀`, `J₁` and `Jₙ`.
//!
//! They appear in three places in the paper:
//!
//! * Eq. (3): the spectral covariance `Rxx ∝ J₀(2π·Fm·τ)`,
//! * Eq. (5)–(6): the spatial covariances as series over `J_{2m}` and
//!   `J_{2m+1}` of the antenna-separation argument `z·(k−j)`,
//! * Eq. (20): the target normalized autocorrelation `J₀(2π·fm·d)` of each
//!   Doppler-filtered Rayleigh process.
//!
//! `J₀`/`J₁` use the ascending power series for small arguments and the
//! Hankel asymptotic expansion for large arguments; `Jₙ` uses upward
//! recurrence when it is stable (`n < x`) and Miller's downward recurrence
//! otherwise. Accuracy is ~1e-12 relative over the argument ranges exercised
//! by the fading models (|x| ≲ 100), which is far below the statistical
//! noise floor of any Monte-Carlo experiment in this repository.

use core::f64::consts::{FRAC_PI_4, PI};

/// Crossover between the power series and the asymptotic expansion.
const SERIES_CUTOFF: f64 = 12.0;

/// J₀ and J₁ power series: `Σ_k (−1)^k (x/2)^{2k+ν} / (k! (k+ν)!)`.
fn bessel_series(nu: u32, x: f64) -> f64 {
    let half_x = 0.5 * x;
    let x2 = half_x * half_x;
    // First term: (x/2)^ν / ν!
    let mut term = 1.0;
    for k in 1..=nu {
        term *= half_x / k as f64;
    }
    let mut sum = term;
    let mut k = 1.0;
    loop {
        term *= -x2 / (k * (k + nu as f64));
        sum += term;
        if term.abs() < f64::EPSILON * sum.abs().max(1e-300) || k > 200.0 {
            break;
        }
        k += 1.0;
    }
    sum
}

/// Hankel asymptotic expansion of `J_ν(x)` for large `x`:
/// `J_ν(x) ≈ √(2/(πx)) [P(ν,x)·cos(χ) − Q(ν,x)·sin(χ)]`, `χ = x − νπ/2 − π/4`.
fn bessel_asymptotic(nu: u32, x: f64) -> f64 {
    let mu = 4.0 * (nu as f64) * (nu as f64);
    let chi = x - (nu as f64) * 0.5 * PI - FRAC_PI_4;
    let inv8x = 1.0 / (8.0 * x);

    // P and Q series (first five terms are ample for x ≥ 12).
    let mut p = 1.0;
    let mut q = (mu - 1.0) * inv8x;
    let mut term_p = 1.0;
    let mut term_q = q;
    let mut sign = -1.0;
    let mut k = 1u32;
    while k <= 5 {
        // term for P: involves factors (mu - (4k-3)^2)(mu - (4k-1)^2)
        let a = 4.0 * k as f64 - 3.0;
        let b = 4.0 * k as f64 - 1.0;
        term_p *= (mu - a * a) * (mu - b * b) / ((2.0 * k as f64 - 1.0) * (2.0 * k as f64))
            * inv8x
            * inv8x;
        p += sign * term_p;
        let c = 4.0 * k as f64 + 1.0;
        term_q *= (mu - b * b) * (mu - c * c) / ((2.0 * k as f64) * (2.0 * k as f64 + 1.0))
            * inv8x
            * inv8x;
        q += sign * term_q;
        sign = -sign;
        k += 1;
    }

    (2.0 / (PI * x)).sqrt() * (p * chi.cos() - q * chi.sin())
}

/// Bessel function of the first kind, order zero.
pub fn bessel_j0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < SERIES_CUTOFF {
        bessel_series(0, ax)
    } else {
        bessel_asymptotic(0, ax)
    }
}

/// Bessel function of the first kind, order one.
pub fn bessel_j1(x: f64) -> f64 {
    let ax = x.abs();
    let val = if ax < SERIES_CUTOFF {
        bessel_series(1, ax)
    } else {
        bessel_asymptotic(1, ax)
    };
    if x < 0.0 {
        -val
    } else {
        val
    }
}

/// Bessel function of the first kind of integer order `n ≥ 0`.
///
/// Uses `J₀`/`J₁` directly for the lowest orders, stable upward recurrence
/// `J_{k+1} = (2k/x)·J_k − J_{k−1}` when `n < x`, and Miller's normalized
/// downward recurrence otherwise.
pub fn bessel_jn(n: u32, x: f64) -> f64 {
    match n {
        0 => return bessel_j0(x),
        1 => return bessel_j1(x),
        _ => {}
    }
    let ax = x.abs();
    if ax == 0.0 {
        return 0.0;
    }

    let value = if (n as f64) < ax {
        // Upward recurrence is stable here.
        let mut jm = bessel_j0(ax);
        let mut j = bessel_j1(ax);
        for k in 1..n {
            let jp = (2.0 * k as f64 / ax) * j - jm;
            jm = j;
            j = jp;
        }
        j
    } else {
        // Miller's algorithm: run the recurrence downward from an even start
        // index safely above n and normalize with the identity
        // J₀(x) + 2·Σ_{k≥1} J_{2k}(x) = 1.
        let mut start = n as usize + 2 * ((40.0 + 2.0 * (n as f64).sqrt()) as usize);
        if start % 2 != 0 {
            start += 1;
        }
        let mut jkp1 = 0.0f64; // J_{k+1} (un-normalized)
        let mut jk = 1e-30f64; // J_k (un-normalized), k = start
        let mut sum = 0.0f64; // J_0 + 2·Σ J_{2k}
        let mut result = 0.0f64;
        let mut k = start as i64;
        while k >= 0 {
            if k as u32 == n {
                result = jk;
            }
            if k % 2 == 0 {
                sum += if k == 0 { jk } else { 2.0 * jk };
            }
            if k > 0 {
                let jkm1 = (2.0 * k as f64 / ax) * jk - jkp1;
                jkp1 = jk;
                jk = jkm1;
                // Rescale to avoid overflow of the un-normalized recurrence.
                if jk.abs() > 1e100 {
                    jk *= 1e-100;
                    jkp1 *= 1e-100;
                    sum *= 1e-100;
                    result *= 1e-100;
                }
            }
            k -= 1;
        }
        result / sum
    };

    if x < 0.0 && n % 2 == 1 {
        -value
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from Abramowitz & Stegun, Table 9.1, and verified
    // against SciPy's scipy.special.jv to 1e-12.
    #[test]
    fn j0_reference_values() {
        let cases = [
            (0.0, 1.0),
            (0.5, 0.938469807240813),
            (1.0, 0.765197686557967),
            (2.0, 0.223890779141236),
            (2.404825557695773, 0.0), // first zero of J0
            (5.0, -0.177596771314338),
            (10.0, -0.245935764451348),
            (15.0, -0.014224472826781),
            (20.0, 0.167024664340583),
            (50.0, 0.055812327669252),
        ];
        for (x, expected) in cases {
            let got = bessel_j0(x);
            assert!(
                (got - expected).abs() < 5e-9,
                "J0({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn j1_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.242268457674874),
            (1.0, 0.440050585744934),
            (2.0, 0.576724807756873),
            (5.0, -0.327579137591465),
            (10.0, 0.043472746168861),
            (20.0, 0.066833124175850),
        ];
        for (x, expected) in cases {
            let got = bessel_j1(x);
            assert!(
                (got - expected).abs() < 5e-9,
                "J1({x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn j0_is_even_and_j1_is_odd() {
        for &x in &[0.3, 1.7, 4.2, 9.9, 14.0] {
            assert!((bessel_j0(-x) - bessel_j0(x)).abs() < 1e-14);
            assert!((bessel_j1(-x) + bessel_j1(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn jn_reference_values() {
        // scipy.special.jv(n, x)
        let cases = [
            (2, 1.0, 0.114903484931901),
            (2, 5.0, 0.046565116277752),
            (3, 2.0, 0.128943249474402),
            (4, 2.5, 0.073_781_880_054_255_23),
            (5, 10.0, -0.234061528186794),
            (7, 15.0, 0.034_463_655_418_959_16),
            (10, 1.0, 2.630615123687453e-10),
            (10, 20.0, 0.186482558023945),
            (12, 4.0, 6.264461794312207e-06),
            (20, 12.566370614359172, 5.268221419819934e-04), // J20(4π), spatial series term
        ];
        for (n, x, expected) in cases {
            let expected: f64 = expected;
            let got = bessel_jn(n, x);
            let tol = 1e-9 * expected.abs().max(1e-3);
            assert!(
                (got - expected).abs() < tol.max(1e-11),
                "J{n}({x}) = {got:e}, expected {expected:e}"
            );
        }
    }

    #[test]
    fn jn_matches_j0_j1_for_low_orders() {
        for &x in &[0.1, 1.0, 3.0, 8.0, 15.0] {
            assert!((bessel_jn(0, x) - bessel_j0(x)).abs() < 1e-14);
            assert!((bessel_jn(1, x) - bessel_j1(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn jn_negative_argument_parity() {
        for n in 2..8u32 {
            for &x in &[0.7, 2.3, 6.1] {
                let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
                assert!(
                    (bessel_jn(n, -x) - sign * bessel_jn(n, x)).abs() < 1e-12,
                    "parity failed for n={n}, x={x}"
                );
            }
        }
    }

    #[test]
    fn jn_at_zero() {
        assert_eq!(bessel_jn(0, 0.0), 1.0);
        for n in 1..10u32 {
            assert_eq!(bessel_jn(n, 0.0), 0.0);
        }
    }

    #[test]
    fn recurrence_relation_holds() {
        // J_{n-1}(x) + J_{n+1}(x) = (2n/x) J_n(x)
        for n in 1..12u32 {
            for &x in &[0.5, 2.0, 7.5, 13.0] {
                let lhs = bessel_jn(n - 1, x) + bessel_jn(n + 1, x);
                let rhs = 2.0 * n as f64 / x * bessel_jn(n, x);
                assert!(
                    (lhs - rhs).abs() < 1e-9,
                    "recurrence failed for n={n}, x={x}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn sum_of_squares_identity() {
        // J0^2 + 2 Σ_{k>=1} Jk^2 = 1
        for &x in &[0.5, 1.5, 4.0, 9.0] {
            let mut s = bessel_j0(x).powi(2);
            for k in 1..60u32 {
                s += 2.0 * bessel_jn(k, x).powi(2);
            }
            assert!((s - 1.0).abs() < 1e-10, "identity failed at x={x}: {s}");
        }
    }

    #[test]
    fn high_order_small_argument_underflows_gracefully() {
        let v = bessel_jn(40, 0.5);
        assert!(v.abs() < 1e-50 || v.abs() > 0.0);
        assert!(v.is_finite());
    }
}

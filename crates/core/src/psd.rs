//! Forced positive semi-definiteness of the covariance matrix
//! (step 4 of the algorithm, paper Sec. 4.2).
//!
//! A covariance matrix specified by a user (or produced by inconsistent
//! measurements) need not be positive semi-definite, in which case no
//! coloring matrix exists for it. The paper's remedy: eigendecompose
//! `K = V·G·Vᴴ` and clip every negative eigenvalue to **zero**,
//!
//! ```text
//! λ̂_j = max(λ_j, 0),          K̄ = V·Λ̂·Vᴴ
//! ```
//!
//! `K̄` is the closest positive semi-definite matrix to `K` in the Frobenius
//! norm, so this clipping is strictly more precise than the ε-replacement of
//! Sorooshyari & Daut (paper ref. \[6\], reproduced in `corrfade-baselines`
//! for the E7 ablation).

use corrfade_linalg::{hermitian_eigen, CMatrix, HermitianEigen};

use crate::error::CorrfadeError;

/// Tolerance below which an eigenvalue is considered numerically zero when
/// classifying the input as PSD / not PSD. Clipping itself uses the exact
/// `max(λ, 0)` rule of the paper.
pub const PSD_CLASSIFICATION_TOL: f64 = 1e-12;

/// Outcome of the PSD-forcing step.
#[derive(Debug, Clone)]
pub struct PsdForcing {
    /// The forced covariance matrix `K̄ = V·Λ̂·Vᴴ` (equal to the input when it
    /// was already PSD).
    pub forced: CMatrix,
    /// The eigendecomposition of the input matrix (eigenvalues **before**
    /// clipping, descending).
    pub eigen: HermitianEigen,
    /// The clipped eigenvalues `λ̂_j = max(λ_j, 0)`, in the same order.
    pub clipped_eigenvalues: Vec<f64>,
    /// How many eigenvalues were negative and got clipped.
    pub clipped_count: usize,
    /// `true` when the input was already positive semi-definite (up to
    /// [`PSD_CLASSIFICATION_TOL`] scaled by the largest eigenvalue).
    pub was_positive_semidefinite: bool,
    /// Frobenius distance `‖K − K̄‖_F` — zero when the input was PSD.
    pub frobenius_gap: f64,
}

impl PsdForcing {
    /// Relative Frobenius gap `‖K − K̄‖_F / ‖K‖_F`.
    pub fn relative_frobenius_gap(&self, original: &CMatrix) -> f64 {
        self.frobenius_gap / original.frobenius_norm().max(f64::MIN_POSITIVE)
    }
}

/// Validates that `k` is a usable covariance matrix: square, Hermitian,
/// non-empty, with non-negative real diagonal.
pub fn validate_covariance(k: &CMatrix) -> Result<(), CorrfadeError> {
    if !k.is_square() {
        return Err(CorrfadeError::NotSquare {
            rows: k.rows(),
            cols: k.cols(),
        });
    }
    if k.rows() == 0 {
        return Err(CorrfadeError::EmptyCovariance);
    }
    let scale = k.max_abs().max(1.0);
    let dev = k.max_abs_diff(&k.adjoint());
    if dev > 1e-9 * scale {
        return Err(CorrfadeError::NotHermitian { deviation: dev });
    }
    for i in 0..k.rows() {
        let d = k[(i, i)].re;
        if d < 0.0 || d.is_nan() {
            return Err(CorrfadeError::NegativePower { index: i, value: d });
        }
    }
    Ok(())
}

/// Performs the paper's PSD-forcing step on a Hermitian covariance matrix.
///
/// # Errors
/// * validation errors from [`validate_covariance`],
/// * [`CorrfadeError::Linalg`] if the eigendecomposition fails (it cannot for
///   a Hermitian matrix, but the error path is kept honest).
pub fn force_positive_semidefinite(k: &CMatrix) -> Result<PsdForcing, CorrfadeError> {
    validate_covariance(k)?;
    let eigen = hermitian_eigen(k)?;

    let lambda_max = eigen
        .eigenvalues
        .first()
        .copied()
        .unwrap_or(0.0)
        .max(f64::MIN_POSITIVE);
    let was_psd = eigen
        .eigenvalues
        .iter()
        .all(|&l| l >= -PSD_CLASSIFICATION_TOL * lambda_max);

    let clipped_eigenvalues: Vec<f64> = eigen.eigenvalues.iter().map(|&l| l.max(0.0)).collect();
    let clipped_count = eigen.eigenvalues.iter().filter(|&&l| l < 0.0).count();

    let forced = if clipped_count == 0 {
        // Re-use the caller's matrix exactly (modulo Hermitian cleanup) so a
        // PSD input round-trips bit-for-bit through this step.
        let mut m = k.clone();
        m.hermitianize();
        m
    } else {
        eigen.reconstruct_with(&clipped_eigenvalues)
    };

    let frobenius_gap = forced.frobenius_distance(k);

    Ok(PsdForcing {
        forced,
        eigen,
        clipped_eigenvalues,
        clipped_count,
        was_positive_semidefinite: was_psd,
        frobenius_gap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;

    fn indefinite_matrix() -> CMatrix {
        // Correlation pattern (+,+,−) across three envelopes that no joint
        // Gaussian can realize — the smallest eigenvalue is negative.
        CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0])
    }

    #[test]
    fn psd_matrix_passes_through_unchanged() {
        let k = corrfade_models::paper_covariance_matrix_22();
        let f = force_positive_semidefinite(&k).unwrap();
        assert!(f.was_positive_semidefinite);
        assert_eq!(f.clipped_count, 0);
        assert!(f.frobenius_gap < 1e-12);
        assert!(f.forced.approx_eq(&k, 1e-12));
        assert!(f.relative_frobenius_gap(&k) < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_clipped_to_psd() {
        let k = indefinite_matrix();
        let f = force_positive_semidefinite(&k).unwrap();
        assert!(!f.was_positive_semidefinite);
        assert_eq!(f.clipped_count, 1);
        assert!(f.frobenius_gap > 0.0);
        // The forced matrix is PSD.
        let e = corrfade_linalg::hermitian_eigen(&f.forced).unwrap();
        assert!(e.is_positive_semidefinite(1e-10));
        // Clipped eigenvalues are max(λ, 0).
        for (&raw, &clip) in f.eigen.eigenvalues.iter().zip(f.clipped_eigenvalues.iter()) {
            assert_eq!(clip, raw.max(0.0));
        }
    }

    #[test]
    fn clipping_is_the_frobenius_optimal_psd_approximation() {
        // For any Hermitian K, the PSD matrix closest in Frobenius norm is
        // obtained exactly by zeroing the negative eigenvalues. Verify our
        // forced matrix beats the ε-style replacement used by ref. [6].
        let k = indefinite_matrix();
        let f = force_positive_semidefinite(&k).unwrap();

        let epsilon = 1e-3;
        let eps_eigenvalues: Vec<f64> = f
            .eigen
            .eigenvalues
            .iter()
            .map(|&l| if l > 0.0 { l } else { epsilon })
            .collect();
        let eps_forced = f.eigen.reconstruct_with(&eps_eigenvalues);
        assert!(
            f.frobenius_gap < eps_forced.frobenius_distance(&k),
            "zero-clipping must be closer to K than epsilon-replacement"
        );
    }

    #[test]
    fn rank_deficient_psd_matrix_is_not_modified() {
        // Fully-correlated pair: eigenvalues {2, 0} — PSD but singular.
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        let f = force_positive_semidefinite(&k).unwrap();
        assert!(f.was_positive_semidefinite);
        assert_eq!(f.clipped_count, 0);
        assert!(f.forced.approx_eq(&k, 1e-12));
        // Cholesky would fail on this matrix; the eigen path must not.
        assert!(corrfade_linalg::cholesky(&k).is_err());
    }

    #[test]
    fn validation_rejects_malformed_covariances() {
        assert!(matches!(
            force_positive_semidefinite(&CMatrix::zeros(2, 3)),
            Err(CorrfadeError::NotSquare { .. })
        ));
        assert!(matches!(
            force_positive_semidefinite(&CMatrix::zeros(0, 0)),
            Err(CorrfadeError::EmptyCovariance)
        ));
        let non_herm = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.0)],
            vec![c64(0.1, 0.0), c64(1.0, 0.0)],
        ]);
        assert!(matches!(
            force_positive_semidefinite(&non_herm),
            Err(CorrfadeError::NotHermitian { .. })
        ));
        let neg_diag = CMatrix::from_real_slice(2, 2, &[-1.0, 0.0, 0.0, 1.0]);
        assert!(matches!(
            force_positive_semidefinite(&neg_diag),
            Err(CorrfadeError::NegativePower { .. })
        ));
    }
}

//! Fluent builder for the generators.
//!
//! The [`GeneratorBuilder`] ties together the three ways of specifying the
//! desired correlation structure — an explicit covariance matrix
//! ([`GeneratorBuilder::covariance`]), the Jakes spectral model
//! ([`GeneratorBuilder::spectral_scenario`], paper Eq. 3–4) or the
//! Salz–Winters spatial model ([`GeneratorBuilder::spatial_scenario`],
//! Eq. 5–7) — with the two ways of specifying the per-envelope powers
//! (Gaussian `σ_g²` via [`GeneratorBuilder::gaussian_powers`] or envelope
//! `σ_r²` via [`GeneratorBuilder::envelope_powers`], converted through
//! Eq. 11 by [`PowerSpec`]), and produces either the single-instant
//! generator ([`CorrelatedRayleighGenerator`], Sec. 4.4) or the real-time
//! Doppler generator ([`RealtimeGenerator`], Sec. 5).
//!
//! Misconfiguration is reported as a typed [`CorrfadeError`]
//! ([`CorrfadeError::MissingCovariance`],
//! [`CorrfadeError::PowerDimensionMismatch`], …) rather than a panic.
//!
//! The named entries of the `corrfade-scenarios` registry bridge into this
//! builder: `Scenario::to_builder()` returns a `GeneratorBuilder` with the
//! covariance source and power profile pre-configured, so experiments can
//! resolve a catalog name and still customize everything below it.
//!
//! # Examples
//!
//! Build from a correlation model (the paper's spectral scenario):
//!
//! ```
//! use corrfade::GeneratorBuilder;
//! use corrfade_models::paper_spectral_scenario;
//!
//! let (model, freqs, delays) = paper_spectral_scenario();
//! let mut gen = GeneratorBuilder::new()
//!     .spectral_scenario(model, freqs, delays)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let sample = gen.sample();
//! assert_eq!(sample.envelopes.len(), 3);
//! ```
//!
//! Override the powers of a model-derived covariance (the correlation
//! structure is kept, the diagonal is rescaled):
//!
//! ```
//! use corrfade::GeneratorBuilder;
//! use corrfade_models::paper_spatial_scenario;
//!
//! let gen = GeneratorBuilder::new()
//!     .spatial_scenario(paper_spatial_scenario(), 3)
//!     .gaussian_powers(&[2.0, 0.5, 1.0])
//!     .seed(7)
//!     .build()
//!     .unwrap();
//! let k = gen.desired_covariance();
//! assert!((k[(0, 0)].re - 2.0).abs() < 1e-12);
//! assert!((k[(1, 1)].re - 0.5).abs() < 1e-12);
//! ```
//!
//! Builder misuse is a typed error:
//!
//! ```
//! use corrfade::{CorrfadeError, GeneratorBuilder};
//!
//! assert!(matches!(
//!     GeneratorBuilder::new().build(),
//!     Err(CorrfadeError::MissingCovariance)
//! ));
//! ```

use corrfade_linalg::{CMatrix, Precision};
use corrfade_models::{JakesSpectralModel, SalzWintersSpatialModel};
use corrfade_stats::correlation_from_covariance;

use crate::error::CorrfadeError;
use crate::generator::CorrelatedRayleighGenerator;
use crate::power::PowerSpec;
use crate::realtime::{RealtimeConfig, RealtimeGenerator};

/// Where the covariance structure comes from.
#[derive(Debug, Clone)]
enum CovarianceSource {
    Matrix(CMatrix),
    Spectral {
        model: JakesSpectralModel,
        frequencies_hz: Vec<f64>,
        delays_s: Vec<Vec<f64>>,
    },
    Spatial {
        model: SalzWintersSpatialModel,
        antennas: usize,
    },
}

/// Fluent builder for [`CorrelatedRayleighGenerator`] and
/// [`RealtimeGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorBuilder {
    source: Option<CovarianceSource>,
    powers: Option<PowerSpec>,
    driving_variance: f64,
    seed: u64,
    precision: Precision,
}

impl Default for GeneratorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GeneratorBuilder {
    /// Starts an empty builder (driving variance 1, seed 0, `f64`
    /// precision).
    pub fn new() -> Self {
        Self {
            source: None,
            powers: None,
            driving_variance: 1.0,
            seed: 0,
            precision: Precision::F64,
        }
    }

    /// Uses an explicit covariance matrix **K** (Eq. 12–13) as the desired
    /// correlation structure.
    pub fn covariance(mut self, k: CMatrix) -> Self {
        self.source = Some(CovarianceSource::Matrix(k));
        self
    }

    /// Uses the Jakes spectral model (Eq. 3–4) evaluated at the given carrier
    /// frequencies and pairwise arrival delays.
    pub fn spectral_scenario(
        mut self,
        model: JakesSpectralModel,
        frequencies_hz: Vec<f64>,
        delays_s: Vec<Vec<f64>>,
    ) -> Self {
        self.source = Some(CovarianceSource::Spectral {
            model,
            frequencies_hz,
            delays_s,
        });
        self
    }

    /// Uses the Salz–Winters spatial model (Eq. 5–7) for a uniform linear
    /// array with the given number of antennas.
    pub fn spatial_scenario(mut self, model: SalzWintersSpatialModel, antennas: usize) -> Self {
        self.source = Some(CovarianceSource::Spatial { model, antennas });
        self
    }

    /// Sets the desired powers of the complex Gaussian variables, `σ_g²_j`.
    /// The correlation *structure* of the configured covariance source is
    /// kept and its powers are rescaled to these values.
    pub fn gaussian_powers(mut self, powers: &[f64]) -> Self {
        self.powers = Some(PowerSpec::Gaussian(powers.to_vec()));
        self
    }

    /// Sets the desired powers of the Rayleigh envelopes, `σ_r²_j`
    /// (converted through Eq. 11).
    pub fn envelope_powers(mut self, powers: &[f64]) -> Self {
        self.powers = Some(PowerSpec::Envelope(powers.to_vec()));
        self
    }

    /// Sets the variance `σ_g²` of the internal white Gaussian vector `W`
    /// (step 6). The output statistics do not depend on it.
    pub fn driving_variance(mut self, variance: f64) -> Self {
        self.driving_variance = variance;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sample precision tier of the real-time generator (default
    /// [`Precision::F64`]; see ARCHITECTURE.md "Precision tiers"). Only
    /// [`GeneratorBuilder::build_realtime`] consumes it — the single-instant
    /// generator and all covariance/decomposition work are always `f64`.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Resolves the configured source (and optional power override) into the
    /// final desired covariance matrix.
    pub fn resolve_covariance(&self) -> Result<CMatrix, CorrfadeError> {
        let base = match self
            .source
            .as_ref()
            .ok_or(CorrfadeError::MissingCovariance)?
        {
            CovarianceSource::Matrix(k) => k.clone(),
            CovarianceSource::Spectral {
                model,
                frequencies_hz,
                delays_s,
            } => model.covariance_matrix(frequencies_hz, delays_s)?,
            CovarianceSource::Spatial { model, antennas } => model.covariance_matrix(*antennas)?,
        };

        let Some(powers) = &self.powers else {
            return Ok(base);
        };

        let sigma_g = powers.gaussian_powers()?;
        if sigma_g.len() != base.rows() {
            return Err(CorrfadeError::PowerDimensionMismatch {
                expected: base.rows(),
                actual: sigma_g.len(),
            });
        }
        // Keep the correlation structure, rescale to the requested powers:
        // K'_{kj} = ρ_{kj}·√(σ_g²_k·σ_g²_j).
        let rho = correlation_from_covariance(&base);
        Ok(CMatrix::from_fn(base.rows(), base.cols(), |i, j| {
            rho[(i, j)].scale((sigma_g[i] * sigma_g[j]).sqrt())
        }))
    }

    /// Builds the single-instant generator (paper Sec. 4.4).
    pub fn build(self) -> Result<CorrelatedRayleighGenerator, CorrfadeError> {
        let k = self.resolve_covariance()?;
        CorrelatedRayleighGenerator::with_driving_variance(k, self.driving_variance, self.seed)
    }

    /// Builds the real-time Doppler generator (paper Sec. 5) with the given
    /// IDFT length, normalized Doppler frequency and filter-input variance.
    pub fn build_realtime(
        self,
        idft_size: usize,
        normalized_doppler: f64,
        sigma_orig_sq: f64,
    ) -> Result<RealtimeGenerator, CorrfadeError> {
        let k = self.resolve_covariance()?;
        RealtimeGenerator::new(RealtimeConfig {
            covariance: k,
            idft_size,
            normalized_doppler,
            sigma_orig_sq,
            seed: self.seed,
            precision: self.precision,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{
        paper_covariance_matrix_22, paper_covariance_matrix_23, paper_spatial_scenario,
        paper_spectral_scenario,
    };

    #[test]
    fn explicit_covariance_round_trips() {
        let k = paper_covariance_matrix_22();
        let g = GeneratorBuilder::new()
            .covariance(k.clone())
            .seed(1)
            .build()
            .unwrap();
        assert!(g.desired_covariance().approx_eq(&k, 0.0));
    }

    #[test]
    fn spectral_scenario_builds_eq22() {
        let (model, freqs, delays) = paper_spectral_scenario();
        let g = GeneratorBuilder::new()
            .spectral_scenario(model, freqs, delays)
            .seed(2)
            .build()
            .unwrap();
        assert!(
            g.desired_covariance()
                .max_abs_diff(&paper_covariance_matrix_22())
                < 5e-4
        );
    }

    #[test]
    fn spatial_scenario_builds_eq23() {
        let g = GeneratorBuilder::new()
            .spatial_scenario(paper_spatial_scenario(), 3)
            .seed(3)
            .build()
            .unwrap();
        assert!(
            g.desired_covariance()
                .max_abs_diff(&paper_covariance_matrix_23())
                < 5e-4
        );
    }

    #[test]
    fn power_override_rescales_the_diagonal_but_keeps_the_correlation() {
        let powers = [2.0, 0.5, 1.0];
        let g = GeneratorBuilder::new()
            .spatial_scenario(paper_spatial_scenario(), 3)
            .gaussian_powers(&powers)
            .seed(4)
            .build()
            .unwrap();
        let k = g.desired_covariance();
        for (i, &p) in powers.iter().enumerate() {
            assert!((k[(i, i)].re - p).abs() < 1e-12);
        }
        // Correlation coefficient between 0 and 1 unchanged from the base
        // scenario (0.8123).
        let rho01 = k[(0, 1)].abs() / (powers[0] * powers[1]).sqrt();
        assert!((rho01 - 0.8123).abs() < 5e-4);
    }

    #[test]
    fn envelope_power_override_applies_eq_11() {
        let sr2 = 0.2146; // corresponds to σ_g² ≈ 1
        let g = GeneratorBuilder::new()
            .spatial_scenario(paper_spatial_scenario(), 3)
            .envelope_powers(&[sr2, sr2, sr2])
            .seed(5)
            .build()
            .unwrap();
        for i in 0..3 {
            assert!((g.desired_covariance()[(i, i)].re - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn realtime_build_uses_the_same_covariance() {
        let (model, freqs, delays) = paper_spectral_scenario();
        let g = GeneratorBuilder::new()
            .spectral_scenario(model, freqs, delays)
            .seed(6)
            .build_realtime(1024, 0.05, 0.5)
            .unwrap();
        assert_eq!(g.dimension(), 3);
        assert!(
            g.desired_covariance()
                .max_abs_diff(&paper_covariance_matrix_22())
                < 5e-4
        );
    }

    #[test]
    fn builder_misuse_is_reported() {
        assert!(matches!(
            GeneratorBuilder::new().build(),
            Err(CorrfadeError::MissingCovariance)
        ));
        assert!(matches!(
            GeneratorBuilder::new()
                .covariance(paper_covariance_matrix_22())
                .gaussian_powers(&[1.0, 1.0])
                .build(),
            Err(CorrfadeError::PowerDimensionMismatch {
                expected: 3,
                actual: 2
            })
        ));
        assert!(matches!(
            GeneratorBuilder::new()
                .covariance(paper_covariance_matrix_22())
                .driving_variance(-1.0)
                .build(),
            Err(CorrfadeError::InvalidDrivingVariance { .. })
        ));
    }

    #[test]
    fn default_builder_equals_new() {
        let d = GeneratorBuilder::default();
        assert!(matches!(d.build(), Err(CorrfadeError::MissingCovariance)));
    }
}

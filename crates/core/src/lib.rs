//! # corrfade
//!
//! Generalized generation of correlated Rayleigh fading envelopes, after
//!
//! > L. C. Tran, T. A. Wysocki, J. Seberry, A. Mertins,
//! > *"A Generalized Algorithm for the Generation of Correlated Rayleigh
//! > Fading Envelopes in Radio Channels"*, Proc. 19th IEEE IPDPS, 2005.
//!
//! The algorithm produces an arbitrary number `N` of Rayleigh envelopes with
//! any (equal or unequal) powers and any desired complex covariance matrix
//! **K** of the underlying complex Gaussian variables — including matrices
//! that are not positive semi-definite (they are replaced by their closest
//! PSD approximation) — in two operating modes:
//!
//! * **Single time-instant mode** ([`CorrelatedRayleighGenerator`]):
//!   successive samples are independent over time; correct marginals and
//!   cross-correlations only. Steps 1–7 of paper Sec. 4.4.
//! * **Real-time mode** ([`RealtimeGenerator`]): each envelope additionally
//!   has the Clarke/Jakes temporal autocorrelation `J₀(2π·f_m·d)` imposed by
//!   a bank of Young–Beaulieu IDFT Doppler generators, with the filter's
//!   variance change (Eq. 19) fed into the coloring step. Paper Sec. 5,
//!   Fig. 3.
//!
//! Both modes (and the conventional baselines in `corrfade-baselines`)
//! implement the zero-allocation streaming interface [`ChannelStream`],
//! which writes blocks into caller-owned planar [`SampleBlock`] buffers —
//! see the [`stream`] module for the streaming quick start.
//!
//! ## Pipeline
//!
//! ```text
//! powers (σ_r² or σ_g², Eq. 11)                 [power::PowerSpec]
//!   + correlation model (Eq. 3–7)               [corrfade-models]
//!        │
//!        ▼
//! covariance matrix K (Eq. 12–13)
//!        │  eigendecomposition + clipping        [psd]
//!        ▼
//! K̄ = V·Λ̂·Vᴴ  (closest PSD approximation)
//!        │  L = V·√Λ̂                             [coloring]
//!        ▼
//! Z = L·W/σ_g   →   envelopes |z_j|              [generator / realtime]
//! ```
//!
//! ## Quick start
//!
//! ```
//! use corrfade::GeneratorBuilder;
//! use corrfade_models::paper_spatial_scenario;
//!
//! // Three spatially-correlated envelopes (the paper's Fig. 4b scenario).
//! let mut gen = GeneratorBuilder::new()
//!     .spatial_scenario(paper_spatial_scenario(), 3)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! let sample = gen.sample();
//! assert_eq!(sample.envelopes.len(), 3);
//! assert!(sample.envelopes.iter().all(|&r| r >= 0.0));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod cache;
pub mod coloring;
pub mod error;
pub mod generator;
pub mod power;
pub mod psd;
pub mod realtime;
pub mod stream;

pub use builder::GeneratorBuilder;
pub use cache::{
    cached_cholesky_coloring, cached_eigen_coloring, clear_coloring_caches, coloring_cache_stats,
};
pub use coloring::{cholesky_coloring, eigen_coloring, Coloring};
pub use error::CorrfadeError;
pub use generator::{CorrelatedRayleighGenerator, Sample};
pub use power::PowerSpec;
pub use psd::{force_positive_semidefinite, validate_covariance, PsdForcing};
pub use realtime::{RealtimeBlock, RealtimeConfig, RealtimeGenerator};
pub use stream::ChannelStream;

// The planar block buffers the streaming API writes into live in the linalg
// crate (they are pure data layout); re-export them — and the precision tier
// selector — so `corrfade` alone is enough to drive a `ChannelStream`.
pub use corrfade_linalg::{BlockView, Precision, SampleBlock, SampleBlock32};

// Re-export the sibling crates under stable names so downstream users can
// depend on `corrfade` alone.
pub use corrfade_dsp as dsp;
pub use corrfade_linalg as linalg;
pub use corrfade_models as models;
pub use corrfade_randn as randn;
pub use corrfade_specfun as specfun;
pub use corrfade_stats as stats;

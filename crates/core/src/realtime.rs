//! Real-time (Doppler-correlated) generation of N correlated Rayleigh
//! envelopes — the paper's Sec. 5 algorithm (Fig. 3).
//!
//! The single-instant generator of [`crate::generator`] produces samples that
//! are independent from one time instant to the next. A realistic fading
//! process is band-limited by the Doppler spread, so its samples are
//! correlated in time with autocorrelation `J₀(2π·f_m·d)`. The paper obtains
//! both properties at once by stacking `N` Young–Beaulieu IDFT generators
//! (one per envelope, paper ref. \[7\]) and coloring their outputs at every
//! time instant with the eigendecomposition coloring matrix:
//!
//! 1. design the Doppler filter `F[k]` (Eq. 21) for the chosen `M` and `f_m`,
//! 2. run `N` independent IDFT generators → sequences `u_j[l]`, each with
//!    autocorrelation `∝ J₀(2π·f_m·d)` and output variance
//!    `σ_g² = 2·σ²_orig/M²·ΣF[k]²` (Eq. 19),
//! 3. at every instant `l`, form `W[l] = (u_1[l], …, u_N[l])ᵀ` and output
//!    `Z[l] = L·W[l]/σ_g`.
//!
//! Feeding the *true* `σ_g²` of step 2 into step 3 — rather than assuming the
//! filter leaves the variance at 1 — is the correction over Sorooshyari–Daut
//! (ref. \[6\]) that makes the realized covariance equal the desired one. The
//! flawed variant is reproduced in `corrfade-baselines` for the E8 ablation.

use corrfade_dsp::{DopplerFilter, IdftRayleighGenerator};
use corrfade_linalg::{CMatrix, Complex32, Complex64, Precision, SampleBlock, SampleBlock32};
use corrfade_randn::RandomStream;

use crate::coloring::{eigen_coloring, Coloring};
use crate::error::CorrfadeError;
use crate::stream::ChannelStream;

/// Configuration of the real-time generator.
#[derive(Debug, Clone)]
pub struct RealtimeConfig {
    /// Desired covariance matrix **K** of the complex Gaussian processes
    /// (diagonal = `σ_g²_j`).
    pub covariance: CMatrix,
    /// IDFT length `M` (number of time samples produced per block). The paper
    /// uses 4096.
    pub idft_size: usize,
    /// Normalized maximum Doppler frequency `f_m = F_m/F_s`. The paper uses
    /// 0.05.
    pub normalized_doppler: f64,
    /// Per-dimension variance `σ²_orig` of the Gaussian sequences feeding the
    /// Doppler filters. The paper uses 1/2. The realized covariance is
    /// invariant to this choice — that invariance is exactly what the
    /// variance-aware combination buys.
    pub sigma_orig_sq: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sample precision tier. [`Precision::F64`] (the default everywhere) is
    /// the bit-exact double-precision pipeline; [`Precision::F32`] runs the
    /// half-width fast tier — same RNG draws, decompositions and filter
    /// design stay `f64`, samples are generated in `f32` and agree with the
    /// f64 pipeline within the documented error bound (see
    /// `ARCHITECTURE.md`, "Precision tiers").
    pub precision: Precision,
}

impl RealtimeConfig {
    /// The paper's Sec. 6 settings (`M = 4096`, `f_m = 0.05`,
    /// `σ²_orig = 1/2`) for a given covariance matrix and seed, in the
    /// default f64 precision tier.
    pub fn paper_defaults(covariance: CMatrix, seed: u64) -> Self {
        Self {
            covariance,
            idft_size: 4096,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed,
            precision: Precision::F64,
        }
    }
}

/// One generated block: `N` correlated fading processes observed over `M`
/// consecutive time samples.
#[derive(Debug, Clone)]
pub struct RealtimeBlock {
    /// `gaussian_paths[j][l]` — complex Gaussian sample of envelope `j` at
    /// time instant `l`.
    pub gaussian_paths: Vec<Vec<Complex64>>,
    /// `envelope_paths[j][l] = |gaussian_paths[j][l]|` — the Rayleigh
    /// envelopes.
    pub envelope_paths: Vec<Vec<f64>>,
}

impl RealtimeBlock {
    /// Number of envelopes `N`.
    pub fn envelopes(&self) -> usize {
        self.gaussian_paths.len()
    }

    /// Number of time samples `M`.
    pub fn samples(&self) -> usize {
        self.gaussian_paths.first().map_or(0, Vec::len)
    }
}

/// Generator of `N` correlated, Doppler-band-limited Rayleigh fading
/// processes (paper Fig. 3).
///
/// The streaming entry point is [`ChannelStream::next_block_into`], which
/// writes `Z[l] = L·W[l]/σ_g` directly into a caller-owned planar
/// [`SampleBlock`] and keeps all working memory (the `N × M` Doppler
/// scratch, the per-instant `W`/`Z` vectors) inside the generator — zero
/// heap allocation per block in steady state. [`Self::generate_block`] and
/// [`Self::generate_blocks`] remain as thin compatibility wrappers that
/// materialize the legacy [`RealtimeBlock`] layout.
#[derive(Debug, Clone)]
pub struct RealtimeGenerator {
    coloring: Coloring,
    desired: CMatrix,
    idft: IdftRayleighGenerator,
    sigma_g_sq: f64,
    rng: RandomStream,
    precision: Precision,
    /// The coloring matrix narrowed once to `f32` for the fast tier.
    coloring32: Vec<Complex32>,
    /// Planar `N × M` scratch for the raw Doppler sequences `u_j[l]`.
    raw: Vec<Complex64>,
    /// Per-instant `W[l]` gather scratch (scalar kernel backend).
    w: Vec<Complex64>,
    /// Split-complex tile scratch (vector kernel backend).
    planes: Vec<f64>,
    /// f32 siblings of the scratch buffers, used by the fast tier only.
    raw32: Vec<Complex32>,
    w32: Vec<Complex32>,
    planes32: Vec<f32>,
    /// Native f32 block backing the widening `ChannelStream` path of an
    /// f32-tier stream.
    block32: SampleBlock32,
}

impl RealtimeGenerator {
    /// Builds the generator: performs steps 1–5 of the single-instant
    /// algorithm (coloring of the covariance matrix), designs the Doppler
    /// filter and precomputes the Eq.-19 output variance.
    pub fn new(config: RealtimeConfig) -> Result<Self, CorrfadeError> {
        let coloring = eigen_coloring(&config.covariance)?;
        Self::from_coloring(coloring, config)
    }

    /// Assembles a generator from a precomputed coloring of
    /// `config.covariance` — lets callers that spin up many generators for
    /// the same covariance matrix (e.g. the parallel engine, one RNG
    /// sub-stream per block) pay for the eigendecomposition once.
    pub fn from_coloring(
        coloring: Coloring,
        config: RealtimeConfig,
    ) -> Result<Self, CorrfadeError> {
        let filter = DopplerFilter::new(config.idft_size, config.normalized_doppler)?;
        let idft = IdftRayleighGenerator::new(filter, config.sigma_orig_sq)?;
        let sigma_g_sq = idft.output_variance();
        let coloring32 = coloring
            .matrix
            .as_slice()
            .iter()
            .map(|&z| Complex32::narrow(z))
            .collect();
        Ok(Self {
            coloring,
            desired: config.covariance,
            idft,
            sigma_g_sq,
            rng: RandomStream::new(config.seed),
            precision: config.precision,
            coloring32,
            raw: Vec::new(),
            w: Vec::new(),
            planes: Vec::new(),
            raw32: Vec::new(),
            w32: Vec::new(),
            planes32: Vec::new(),
            block32: SampleBlock32::empty(),
        })
    }

    /// A copy of this generator whose RNG is rewound to a fresh stream for
    /// `seed` — behaviourally identical to rebuilding with the same
    /// configuration and the new seed, but without repeating the
    /// eigendecomposition and filter design.
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        Self {
            rng: RandomStream::new(seed),
            ..self.clone()
        }
    }

    /// Number of envelopes `N`.
    pub fn dimension(&self) -> usize {
        self.coloring.dimension()
    }

    /// Number of time samples per block, `M`.
    pub fn block_len(&self) -> usize {
        self.idft.filter().len()
    }

    /// The Doppler filter in use.
    pub fn filter(&self) -> &DopplerFilter {
        self.idft.filter()
    }

    /// The Eq.-19 output variance `σ_g²` of each Doppler-filtered sequence —
    /// the value fed into the coloring step.
    pub fn doppler_output_variance(&self) -> f64 {
        self.sigma_g_sq
    }

    /// The desired covariance matrix.
    pub fn desired_covariance(&self) -> &CMatrix {
        &self.desired
    }

    /// The covariance actually realized, `L·Lᴴ`.
    pub fn realized_covariance(&self) -> CMatrix {
        self.coloring.realized_covariance()
    }

    /// The coloring (matrix + PSD-forcing metadata).
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The precision tier this generator produces samples in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The streaming hot path behind [`ChannelStream::next_block_into`]:
    /// draws the `N` Doppler-weighted spectra into the planar scratch, then
    /// runs the **fused coloring+IDFT kernel**
    /// ([`corrfade_dsp::color_idft_block`]) — the final butterfly stage and
    /// the coloring `Z[l] = L·W[l]/σ_g` execute in one output pass, so each
    /// block sample is written exactly once. The fused kernel is
    /// bit-identical per backend to the historical two-pass path (IDFT per
    /// row, then `color_block`), so the scalar backend still reproduces the
    /// pre-kernel outputs bit for bit. No heap allocation once the scratch
    /// and the destination block are warm.
    ///
    /// An f32-tier generator fills its native half-width block and widens
    /// into `block` — `ChannelStream` consumers see the same `f64` layout
    /// regardless of tier; the native path is [`Self::next_block32_into`].
    fn fill_block(&mut self, block: &mut SampleBlock) {
        match self.precision {
            Precision::F64 => self.fill_block_f64(block),
            Precision::F32 => {
                let mut b32 = std::mem::take(&mut self.block32);
                self.fill_block32(&mut b32);
                b32.widen_into(block);
                self.block32 = b32;
            }
        }
    }

    fn fill_block_f64(&mut self, block: &mut SampleBlock) {
        let n = self.coloring.dimension();
        let m = self.idft.filter().len();
        block.resize(n, m);
        self.raw.resize(n * m, Complex64::ZERO);

        // Steps 2–5 of the Sec. 5 algorithm: N independent Doppler-weighted
        // spectra, one per envelope, planar in the scratch buffer. (The
        // IDFTs run inside the fused kernel below; the RNG draw order is
        // identical to transforming each row eagerly.)
        for j in 0..n {
            self.idft
                .fill_spectrum_into(&mut self.rng, &mut self.raw[j * m..(j + 1) * m]);
        }

        // Steps 6–8, fused: invert each spectrum and color every time
        // instant with the Eq.-19 variance in one pass over the output.
        let scale = 1.0 / self.sigma_g_sq.sqrt();
        corrfade_dsp::color_idft_block(
            n,
            m,
            self.coloring.matrix.as_slice(),
            scale,
            &mut self.raw,
            block.as_mut_slice(),
            &mut self.w,
            &mut self.planes,
        );
    }

    fn fill_block32(&mut self, block: &mut SampleBlock32) {
        let n = self.coloring.dimension();
        let m = self.idft.filter().len();
        block.resize(n, m);
        self.raw32.resize(n * m, Complex32::ZERO);

        // Same RNG stream as the f64 tier (the Gaussians are drawn in f64
        // and narrowed at the spectrum fill), so an f32 stream is the
        // half-width shadow of the f64 stream with the same seed.
        for j in 0..n {
            self.idft
                .fill_spectrum32_into(&mut self.rng, &mut self.raw32[j * m..(j + 1) * m]);
        }

        let scale = (1.0 / self.sigma_g_sq.sqrt()) as f32;
        corrfade_dsp::color_idft_block32(
            n,
            m,
            &self.coloring32,
            scale,
            &mut self.raw32,
            block.as_mut_slice(),
            &mut self.w32,
            &mut self.planes32,
        );
    }

    /// The f32 fast tier's native streaming entry point: fills a caller-owned
    /// half-width block directly — no widening pass, half the output memory
    /// traffic of the `ChannelStream` path. Zero heap allocation once the
    /// scratch and the destination block are warm.
    ///
    /// # Panics
    /// Panics if this generator was not configured with
    /// [`Precision::F32`] — the f64 tier has no native half-width stream
    /// (narrow a [`SampleBlock`] explicitly if you want one).
    pub fn next_block32_into(&mut self, block: &mut SampleBlock32) -> Result<(), CorrfadeError> {
        assert_eq!(
            self.precision,
            Precision::F32,
            "next_block32_into requires an f32-tier generator (configure RealtimeConfig::precision)"
        );
        self.fill_block32(block);
        Ok(())
    }

    /// Fast-forwards the stream past `blocks` blocks without generating
    /// them: only the RNG draws of each skipped block are replayed
    /// ([`IdftRayleighGenerator::skip_spectrum`], once per envelope per
    /// block) — the IDFT, the coloring matvec and every output write are
    /// skipped entirely. Afterwards the generator's next block is
    /// **bit-identical** to the `blocks + 1`-th block of an untouched
    /// stream, in both precision tiers (the f32 tier shares the f64 RNG
    /// stream by construction).
    ///
    /// This is the serving layer's resume primitive: a client reconnecting
    /// with a block cursor gets a fresh generator (decomposition from the
    /// process-wide cache) fast-forwarded to its cursor at a fraction of
    /// the cost of regenerating the blocks it already holds.
    pub fn skip_blocks(&mut self, blocks: u64) {
        let n = self.coloring.dimension();
        for _ in 0..blocks {
            for _ in 0..n {
                self.idft.skip_spectrum(&mut self.rng);
            }
        }
    }

    /// Generates one block of `M` consecutive time samples of all `N`
    /// correlated fading processes.
    ///
    /// Compatibility wrapper over the streaming path: allocates the legacy
    /// per-envelope `Vec`s on every call. Prefer
    /// [`ChannelStream::next_block_into`] with a pooled [`SampleBlock`] on
    /// hot paths.
    pub fn generate_block(&mut self) -> RealtimeBlock {
        let mut block = SampleBlock::empty();
        self.fill_block(&mut block);
        RealtimeBlock {
            gaussian_paths: block.to_paths(),
            envelope_paths: block.to_envelope_paths(),
        }
    }

    /// Generates `blocks` consecutive blocks and concatenates them per
    /// envelope (convenience for long Monte-Carlo runs).
    ///
    /// Compatibility wrapper over the streaming path; one internal
    /// [`SampleBlock`] is reused across all blocks and each block's lazily
    /// computed envelopes are appended directly — the envelopes are not
    /// recomputed over the concatenated paths.
    pub fn generate_blocks(&mut self, blocks: usize) -> RealtimeBlock {
        let n = self.dimension();
        let mut gaussian_paths: Vec<Vec<Complex64>> = vec![Vec::new(); n];
        let mut envelope_paths: Vec<Vec<f64>> = vec![Vec::new(); n];
        let mut block = SampleBlock::empty();
        for _ in 0..blocks {
            self.fill_block(&mut block);
            for (j, path) in gaussian_paths.iter_mut().enumerate() {
                path.extend_from_slice(block.path(j));
            }
            for (j, path) in envelope_paths.iter_mut().enumerate() {
                path.extend_from_slice(block.envelope_path(j));
            }
        }
        RealtimeBlock {
            gaussian_paths,
            envelope_paths,
        }
    }
}

impl ChannelStream for RealtimeGenerator {
    fn dimension(&self) -> usize {
        self.coloring.dimension()
    }

    fn block_len(&self) -> usize {
        self.idft.filter().len()
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        self.fill_block(block);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{
        normalized_autocorrelation, relative_frobenius_error, sample_covariance_from_paths,
    };

    fn small_config(k: CMatrix, seed: u64) -> RealtimeConfig {
        // Smaller M than the paper to keep unit tests quick; the benches use
        // the full 4096.
        RealtimeConfig {
            covariance: k,
            idft_size: 1024,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed,
            precision: Precision::F64,
        }
    }

    #[test]
    fn construction_and_accessors() {
        let k = paper_covariance_matrix_22();
        let g = RealtimeGenerator::new(RealtimeConfig::paper_defaults(k.clone(), 1)).unwrap();
        assert_eq!(g.dimension(), 3);
        assert_eq!(g.block_len(), 4096);
        assert_eq!(g.filter().km(), 204);
        assert!(g.desired_covariance().approx_eq(&k, 0.0));
        assert!(g.realized_covariance().approx_eq(&k, 1e-10));
        // Eq. 19 variance is NOT σ²_orig.
        assert!((g.doppler_output_variance() - 0.5).abs() > 0.05);
    }

    #[test]
    fn block_shape() {
        let mut g = RealtimeGenerator::new(small_config(paper_covariance_matrix_23(), 3)).unwrap();
        let b = g.generate_block();
        assert_eq!(b.envelopes(), 3);
        assert_eq!(b.samples(), 1024);
        for j in 0..3 {
            assert_eq!(b.gaussian_paths[j].len(), 1024);
            for (z, &r) in b.gaussian_paths[j].iter().zip(b.envelope_paths[j].iter()) {
                assert!((z.abs() - r).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn realized_covariance_matches_desired_spectral_case() {
        // Experiment E3's quantitative core: with the variance-aware
        // combination, the sample covariance over many blocks converges to
        // the desired Eq.-22 matrix.
        let k = paper_covariance_matrix_22();
        let mut g = RealtimeGenerator::new(small_config(k.clone(), 17)).unwrap();
        let block = g.generate_blocks(40);
        let khat = sample_covariance_from_paths(&block.gaussian_paths);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.08, "relative covariance error {err}");
    }

    #[test]
    fn realized_covariance_matches_desired_spatial_case() {
        let k = paper_covariance_matrix_23();
        let mut g = RealtimeGenerator::new(small_config(k.clone(), 29)).unwrap();
        let block = g.generate_blocks(40);
        let khat = sample_covariance_from_paths(&block.gaussian_paths);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.08, "relative covariance error {err}");
    }

    #[test]
    fn each_envelope_has_the_doppler_autocorrelation() {
        // Experiment E6's core: every generated process keeps the
        // J0(2π fm d) autocorrelation of its Doppler filter after coloring.
        let k = paper_covariance_matrix_23();
        let mut g = RealtimeGenerator::new(small_config(k, 41)).unwrap();
        let target = g.filter().normalized_autocorrelation(40);
        let mut acc = vec![0.0f64; 41];
        let runs = 30;
        for _ in 0..runs {
            let block = g.generate_block();
            for path in &block.gaussian_paths {
                let rho = normalized_autocorrelation(path, 40);
                for (a, r) in acc.iter_mut().zip(rho.iter()) {
                    *a += r;
                }
            }
        }
        for a in acc.iter_mut() {
            *a /= (runs * 3) as f64;
        }
        for d in 0..=40 {
            assert!(
                (acc[d] - target[d]).abs() < 0.08,
                "lag {d}: autocorrelation {} vs filter target {}",
                acc[d],
                target[d]
            );
        }
    }

    #[test]
    fn envelopes_are_rayleigh() {
        let k = paper_covariance_matrix_22();
        let mut g = RealtimeGenerator::new(small_config(k, 53)).unwrap();
        let block = g.generate_blocks(20);
        for path in &block.envelope_paths {
            let sigma = corrfade_stats::rayleigh_scale(1.0);
            let t = corrfade_stats::ks_test(path, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
            // The samples are correlated in time, which weakens the KS test's
            // independence assumption, so use a lenient significance level;
            // the statistic itself must still be small.
            assert!(t.statistic < 0.05, "KS statistic too large: {t:?}");
        }
    }

    #[test]
    fn result_is_invariant_to_sigma_orig() {
        // The whole point of the Eq.-19 correction: changing σ²_orig must not
        // change the realized covariance.
        let k = paper_covariance_matrix_22();
        for &sigma_orig_sq in &[0.1, 0.5, 3.0] {
            let cfg = RealtimeConfig {
                sigma_orig_sq,
                ..small_config(k.clone(), 61)
            };
            let mut g = RealtimeGenerator::new(cfg).unwrap();
            let block = g.generate_blocks(30);
            let khat = sample_covariance_from_paths(&block.gaussian_paths);
            let err = relative_frobenius_error(&khat, &k);
            assert!(
                err < 0.09,
                "sigma_orig_sq {sigma_orig_sq}: relative covariance error {err}"
            );
        }
    }

    #[test]
    fn streaming_is_bit_identical_to_legacy_wrappers() {
        let k = paper_covariance_matrix_22();
        let mut legacy = RealtimeGenerator::new(small_config(k.clone(), 77)).unwrap();
        let mut streaming = RealtimeGenerator::new(small_config(k, 77)).unwrap();
        let reference = legacy.generate_blocks(3);
        let mut block = SampleBlock::empty();
        let mut offset = 0;
        for _ in 0..3 {
            streaming.next_block_into(&mut block).unwrap();
            let m = block.samples();
            for j in 0..3 {
                assert_eq!(
                    &reference.gaussian_paths[j][offset..offset + m],
                    block.path(j)
                );
                assert_eq!(
                    &reference.envelope_paths[j][offset..offset + m],
                    block.envelope_path(j)
                );
            }
            offset += m;
        }
    }

    #[test]
    fn skip_blocks_is_bit_identical_to_generating_them() {
        let k = paper_covariance_matrix_22();
        let mut continuous = RealtimeGenerator::new(small_config(k.clone(), 123)).unwrap();
        let mut block = SampleBlock::empty();
        for _ in 0..4 {
            continuous.next_block_into(&mut block).unwrap();
        }
        let expected: Vec<u64> = block
            .as_slice()
            .iter()
            .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
            .collect();

        // Skip 3, generate the 4th: must be the continuous 4th block.
        let mut resumed = RealtimeGenerator::new(small_config(k.clone(), 123)).unwrap();
        resumed.skip_blocks(3);
        let mut got = SampleBlock::empty();
        resumed.next_block_into(&mut got).unwrap();
        let got_bits: Vec<u64> = got
            .as_slice()
            .iter()
            .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
            .collect();
        assert_eq!(got_bits, expected);

        // The f32 tier shares the RNG stream, so the same contract holds.
        let f32_cfg = RealtimeConfig {
            precision: Precision::F32,
            ..small_config(k.clone(), 123)
        };
        let mut continuous32 = RealtimeGenerator::new(f32_cfg.clone()).unwrap();
        for _ in 0..4 {
            continuous32.next_block_into(&mut block).unwrap();
        }
        let mut resumed32 = RealtimeGenerator::new(f32_cfg).unwrap();
        resumed32.skip_blocks(3);
        resumed32.next_block_into(&mut got).unwrap();
        assert_eq!(got.as_slice(), block.as_slice());

        // skip_blocks(0) is a no-op.
        let mut untouched = RealtimeGenerator::new(small_config(k.clone(), 9)).unwrap();
        let mut noop = RealtimeGenerator::new(small_config(k, 9)).unwrap();
        noop.skip_blocks(0);
        assert_eq!(
            untouched.generate_block().gaussian_paths,
            noop.generate_block().gaussian_paths
        );
    }

    #[test]
    fn reseeded_matches_fresh_generator() {
        let k = paper_covariance_matrix_23();
        let mut used = RealtimeGenerator::new(small_config(k.clone(), 5)).unwrap();
        let _ = used.generate_block(); // advance the RNG
        let mut reseeded = used.reseeded(9);
        let mut fresh = RealtimeGenerator::new(small_config(k, 9)).unwrap();
        assert_eq!(
            reseeded.generate_block().gaussian_paths,
            fresh.generate_block().gaussian_paths
        );
    }

    #[test]
    fn from_coloring_shares_the_decomposition() {
        let k = paper_covariance_matrix_22();
        let coloring = crate::coloring::eigen_coloring(&k).unwrap();
        let mut a = RealtimeGenerator::from_coloring(coloring, small_config(k.clone(), 3)).unwrap();
        let mut b = RealtimeGenerator::new(small_config(k, 3)).unwrap();
        assert_eq!(
            a.generate_block().gaussian_paths,
            b.generate_block().gaussian_paths
        );
    }

    #[test]
    fn f32_tier_tracks_f64_within_documented_bound() {
        let k = paper_covariance_matrix_22();
        let mut g64 = RealtimeGenerator::new(small_config(k.clone(), 91)).unwrap();
        let mut g32 = RealtimeGenerator::new(RealtimeConfig {
            precision: Precision::F32,
            ..small_config(k, 91)
        })
        .unwrap();
        assert_eq!(g32.precision(), Precision::F32);
        let mut b64 = SampleBlock::empty();
        let mut b32 = SampleBlock::empty();
        for _ in 0..3 {
            g64.next_block_into(&mut b64).unwrap();
            g32.next_block_into(&mut b32).unwrap();
            // Same RNG stream, narrowed at the spectrum fill: the f32 tier
            // shadows the f64 stream within the documented 1e-3 absolute
            // bound for the paper's unit-scale covariances.
            for (a, b) in b64.as_slice().iter().zip(b32.as_slice().iter()) {
                let d = (*a - *b).abs();
                assert!(d <= 1e-3, "{a} vs {b} (|Δ| = {d:e})");
            }
        }
    }

    #[test]
    fn native_f32_block_is_the_widened_streams_source() {
        let k = paper_covariance_matrix_23();
        let cfg = RealtimeConfig {
            precision: Precision::F32,
            ..small_config(k, 57)
        };
        let mut widening = RealtimeGenerator::new(cfg.clone()).unwrap();
        let mut native = RealtimeGenerator::new(cfg).unwrap();
        let mut wide = SampleBlock::empty();
        let mut half = SampleBlock32::empty();
        for _ in 0..2 {
            widening.next_block_into(&mut wide).unwrap();
            native.next_block32_into(&mut half).unwrap();
            assert_eq!(half.envelopes(), wide.envelopes());
            assert_eq!(half.samples(), wide.samples());
            for (w, h) in wide.as_slice().iter().zip(half.as_slice().iter()) {
                assert_eq!(*w, h.widen());
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires an f32-tier generator")]
    fn native_f32_entry_point_rejects_f64_streams() {
        let k = paper_covariance_matrix_22();
        let mut g = RealtimeGenerator::new(small_config(k, 1)).unwrap();
        let mut half = SampleBlock32::empty();
        let _ = g.next_block32_into(&mut half);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let k = paper_covariance_matrix_22();
        let bad_doppler = RealtimeConfig {
            normalized_doppler: 0.9,
            ..small_config(k.clone(), 1)
        };
        assert!(matches!(
            RealtimeGenerator::new(bad_doppler),
            Err(CorrfadeError::Dsp(_))
        ));
        let bad_sigma = RealtimeConfig {
            sigma_orig_sq: -1.0,
            ..small_config(k.clone(), 1)
        };
        assert!(matches!(
            RealtimeGenerator::new(bad_sigma),
            Err(CorrfadeError::Dsp(_))
        ));
        let bad_cov = RealtimeConfig {
            covariance: CMatrix::zeros(2, 3),
            ..small_config(k, 1)
        };
        assert!(matches!(
            RealtimeGenerator::new(bad_cov),
            Err(CorrfadeError::NotSquare { .. })
        ));
    }
}

//! The zero-allocation streaming generation surface.
//!
//! The paper's Sec. 5 algorithm is inherently streaming: blocks of `M`
//! Doppler-correlated samples of `N` envelopes are produced one after
//! another. [`ChannelStream`] is the one interface every generator in the
//! workspace speaks — the real-time generator, the single-instant generator
//! (batching independent snapshots into blocks), and the conventional
//! baselines in `corrfade-baselines` — so ablation experiments compare
//! like-for-like through a single code path, and services can hold a
//! heterogeneous set of `Box<dyn ChannelStream>` channels.
//!
//! Blocks are written into a caller-owned planar [`SampleBlock`]; after the
//! first call has sized the buffer and the generator's internal scratch,
//! subsequent calls perform **no heap allocation** (the workspace carries an
//! allocation-regression test for this).
//!
//! ```
//! use corrfade::{ChannelStream, RealtimeConfig, RealtimeGenerator, SampleBlock};
//! use corrfade_linalg::Precision;
//! use corrfade_models::paper_covariance_matrix_23;
//!
//! let cfg = RealtimeConfig {
//!     covariance: paper_covariance_matrix_23(),
//!     idft_size: 256,
//!     normalized_doppler: 0.05,
//!     sigma_orig_sq: 0.5,
//!     seed: 7,
//!     precision: Precision::F64,
//! };
//! let mut stream = RealtimeGenerator::new(cfg).unwrap();
//! let mut block = SampleBlock::empty();
//! stream.next_block_into(&mut block).unwrap();
//! assert_eq!(block.envelopes(), stream.dimension());
//! assert_eq!(block.samples(), stream.block_len());
//! ```

use corrfade_linalg::SampleBlock;

use crate::error::CorrfadeError;

/// A source of correlated fading sample blocks written into caller-owned
/// planar buffers.
///
/// Implementations resize the destination block to
/// `dimension() × block_len()` (a capacity-reusing no-op in steady state)
/// and overwrite its contents; they must not allocate per call once their
/// internal scratch is warm.
pub trait ChannelStream {
    /// Number of correlated envelope processes `N` produced per block.
    #[must_use]
    fn dimension(&self) -> usize;

    /// Number of time samples `M` per produced block.
    #[must_use]
    fn block_len(&self) -> usize;

    /// Generates the next block of `dimension() × block_len()` samples into
    /// `block`, resizing it if necessary.
    ///
    /// # Errors
    /// Implementations report generation failures as [`CorrfadeError`]; the
    /// in-tree generators validate their configuration at construction time
    /// and never fail here.
    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError>;

    /// Convenience: allocates a fresh block and fills it. Use
    /// [`ChannelStream::next_block_into`] with a pooled block on hot paths.
    ///
    /// # Errors
    /// Same as [`ChannelStream::next_block_into`].
    fn next_block(&mut self) -> Result<SampleBlock, CorrfadeError> {
        let mut block = SampleBlock::empty();
        self.next_block_into(&mut block)?;
        Ok(block)
    }
}

impl<S: ChannelStream + ?Sized> ChannelStream for Box<S> {
    fn dimension(&self) -> usize {
        (**self).dimension()
    }

    fn block_len(&self) -> usize {
        (**self).block_len()
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        (**self).next_block_into(block)
    }
}

impl<S: ChannelStream + ?Sized> ChannelStream for &mut S {
    fn dimension(&self) -> usize {
        (**self).dimension()
    }

    fn block_len(&self) -> usize {
        (**self).block_len()
    }

    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        (**self).next_block_into(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorrelatedRayleighGenerator;
    use corrfade_models::paper_covariance_matrix_22;

    #[test]
    fn trait_is_object_safe_and_boxable() {
        let gen = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 1).unwrap();
        let mut stream: Box<dyn ChannelStream> = Box::new(gen);
        assert_eq!(stream.dimension(), 3);
        let block = stream.next_block().unwrap();
        assert_eq!(block.envelopes(), 3);
        assert_eq!(block.samples(), stream.block_len());
    }

    #[test]
    fn mutable_reference_forwards() {
        let mut gen = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 1).unwrap();
        fn through_generic<S: ChannelStream>(s: &mut S) -> usize {
            s.dimension()
        }
        assert_eq!(through_generic(&mut &mut gen), 3);
    }
}

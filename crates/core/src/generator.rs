//! The discrete-time-instant generator (steps 6–7 of the algorithm,
//! paper Sec. 4.4).
//!
//! Given the coloring matrix `L` of the (PSD-forced) desired covariance
//! matrix, each call draws a white complex Gaussian vector
//! `W ~ CN(0, σ_g²·I)` with an *arbitrary* common variance `σ_g²` and colors
//! it:
//!
//! ```text
//! Z = L·W / σ_g
//! ```
//!
//! so that `E[Z·Zᴴ] = L·Lᴴ = K̄` regardless of `σ_g²`. The moduli `|z_j|` are
//! the desired correlated Rayleigh envelopes. Samples produced by successive
//! calls are independent over time (the correlated-in-time variant is
//! [`crate::realtime::RealtimeGenerator`]).

use corrfade_linalg::{CMatrix, Complex64, SampleBlock};
use corrfade_randn::{ComplexGaussian, RandomStream};

use crate::coloring::{eigen_coloring, Coloring};
use crate::error::CorrfadeError;
use crate::stream::ChannelStream;

/// One draw of the generator: the correlated complex Gaussian vector `Z` and
/// its Rayleigh envelopes `|Z|`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The correlated zero-mean complex Gaussian variables `z_1 … z_N`.
    pub gaussian: Vec<Complex64>,
    /// The Rayleigh envelopes `r_j = |z_j|`.
    pub envelopes: Vec<f64>,
}

impl Sample {
    /// Number of envelopes in the sample.
    pub fn len(&self) -> usize {
        self.gaussian.len()
    }

    /// `true` when the sample is empty (never, for a constructed generator).
    pub fn is_empty(&self) -> bool {
        self.gaussian.is_empty()
    }
}

/// Generator of correlated Rayleigh fading envelopes at independent time
/// instants — the proposed algorithm of Sec. 4.4.
///
/// Also implements [`ChannelStream`] by batching
/// [`Self::stream_block_len`] independent snapshots into one planar block
/// per call, so single-instant and real-time generation (and the baselines)
/// can be driven — and compared — through the same streaming interface.
#[derive(Debug, Clone)]
pub struct CorrelatedRayleighGenerator {
    coloring: Coloring,
    desired: CMatrix,
    driving_variance: f64,
    rng: RandomStream,
    gaussian: ComplexGaussian,
    /// Snapshots per [`ChannelStream`] block.
    stream_block_len: usize,
    /// Per-snapshot white vector `W` scratch.
    w: Vec<Complex64>,
    /// Per-snapshot colored vector `Z` scratch (streaming path only; the
    /// legacy sampling methods write into caller-owned buffers).
    z: Vec<Complex64>,
}

impl CorrelatedRayleighGenerator {
    /// Creates a generator for the desired covariance matrix `K` with the
    /// default driving variance `σ_g² = 1` and the given RNG seed.
    pub fn new(covariance: CMatrix, seed: u64) -> Result<Self, CorrfadeError> {
        Self::with_driving_variance(covariance, 1.0, seed)
    }

    /// Creates a generator with an explicit driving variance `σ_g²` for the
    /// white vector `W` (the result is invariant to this choice; it exists so
    /// the real-time algorithm can pass the Doppler-filtered variance of
    /// Eq. 19 through the identical code path).
    pub fn with_driving_variance(
        covariance: CMatrix,
        driving_variance: f64,
        seed: u64,
    ) -> Result<Self, CorrfadeError> {
        let coloring = eigen_coloring(&covariance)?;
        Self::from_coloring(coloring, covariance, driving_variance, seed)
    }

    /// Assembles a generator from a precomputed coloring (used by the builder
    /// and the real-time generator to avoid re-decomposing).
    pub fn from_coloring(
        coloring: Coloring,
        desired: CMatrix,
        driving_variance: f64,
        seed: u64,
    ) -> Result<Self, CorrfadeError> {
        if driving_variance <= 0.0 || driving_variance.is_nan() {
            return Err(CorrfadeError::InvalidDrivingVariance {
                value: driving_variance,
            });
        }
        Ok(Self {
            coloring,
            desired,
            driving_variance,
            rng: RandomStream::new(seed),
            gaussian: ComplexGaussian::default(),
            stream_block_len: Self::DEFAULT_STREAM_BLOCK_LEN,
            w: Vec::new(),
            z: Vec::new(),
        })
    }

    /// Default number of snapshots batched into one [`ChannelStream`] block.
    pub const DEFAULT_STREAM_BLOCK_LEN: usize = 1024;

    /// Number of independent snapshots batched into each block produced
    /// through [`ChannelStream`].
    #[must_use]
    pub fn stream_block_len(&self) -> usize {
        self.stream_block_len
    }

    /// Sets the [`ChannelStream`] batch length.
    ///
    /// # Panics
    /// Panics if `len` is zero.
    pub fn set_stream_block_len(&mut self, len: usize) {
        assert!(len > 0, "stream block length must be positive");
        self.stream_block_len = len;
    }

    /// Builder-style variant of [`Self::set_stream_block_len`].
    #[must_use]
    pub fn with_stream_block_len(mut self, len: usize) -> Self {
        self.set_stream_block_len(len);
        self
    }

    /// Number of envelopes `N`.
    pub fn dimension(&self) -> usize {
        self.coloring.dimension()
    }

    /// The desired covariance matrix the generator was configured with.
    pub fn desired_covariance(&self) -> &CMatrix {
        &self.desired
    }

    /// The covariance the generator actually realizes, `L·Lᴴ` — equal to the
    /// desired matrix when it was PSD, its closest PSD approximation
    /// otherwise.
    pub fn realized_covariance(&self) -> CMatrix {
        self.coloring.realized_covariance()
    }

    /// The coloring (matrix + PSD-forcing metadata).
    pub fn coloring(&self) -> &Coloring {
        &self.coloring
    }

    /// The driving variance `σ_g²` of the internal white vector `W`.
    pub fn driving_variance(&self) -> f64 {
        self.driving_variance
    }

    /// Colors an externally supplied white complex Gaussian vector of
    /// variance `w_variance`: `Z = L·W/σ_g` (step 7). This is the entry point
    /// the real-time algorithm uses with the Doppler-filtered samples and the
    /// Eq.-19 variance.
    ///
    /// # Panics
    /// Panics if `w.len()` differs from the generator dimension or
    /// `w_variance` is not strictly positive.
    pub fn color(&self, w: &[Complex64], w_variance: f64) -> Vec<Complex64> {
        assert_eq!(
            w.len(),
            self.dimension(),
            "color: expected a vector of length {}, got {}",
            self.dimension(),
            w.len()
        );
        assert!(
            w_variance > 0.0,
            "color: variance must be strictly positive"
        );
        let scale = 1.0 / w_variance.sqrt();
        self.coloring
            .matrix
            .matvec(w)
            .into_iter()
            .map(|z| z.scale(scale))
            .collect()
    }

    /// Draws the next correlated complex Gaussian vector `Z` (step 6 + 7)
    /// into a caller-owned buffer, using only internal scratch — the
    /// allocation-free primitive behind both the legacy sampling methods and
    /// the [`ChannelStream`] implementation.
    ///
    /// # Panics
    /// Panics if `out.len()` differs from the generator dimension.
    pub fn sample_gaussian_into(&mut self, out: &mut [Complex64]) {
        let n = self.coloring.dimension();
        assert_eq!(
            out.len(),
            n,
            "sample_gaussian_into: expected a buffer of length {n}, got {}",
            out.len()
        );
        self.w.resize(n, Complex64::ZERO);
        let variance = self.driving_variance;
        let Self {
            rng, gaussian, w, ..
        } = self;
        gaussian.fill(rng, w, variance);
        self.coloring.matrix.matvec_into(&self.w, out);
        let scale = 1.0 / variance.sqrt();
        for zj in out.iter_mut() {
            *zj = zj.scale(scale);
        }
    }

    /// Draws the next correlated complex Gaussian vector `Z` (step 6 + 7).
    pub fn sample_gaussian(&mut self) -> Vec<Complex64> {
        let mut out = vec![Complex64::ZERO; self.dimension()];
        self.sample_gaussian_into(&mut out);
        out
    }

    /// Draws the next sample (complex Gaussians and their Rayleigh
    /// envelopes).
    pub fn sample(&mut self) -> Sample {
        let gaussian = self.sample_gaussian();
        let envelopes = gaussian.iter().map(|z| z.abs()).collect();
        Sample {
            gaussian,
            envelopes,
        }
    }

    /// Draws `count` independent snapshots (each a length-`N` vector `Z`).
    pub fn generate_snapshots(&mut self, count: usize) -> Vec<Vec<Complex64>> {
        (0..count).map(|_| self.sample_gaussian()).collect()
    }

    /// Draws `count` independent time samples and returns them as `N`
    /// envelope paths of length `count` (the layout of the paper's Fig. 4
    /// plots).
    pub fn generate_envelope_paths(&mut self, count: usize) -> Vec<Vec<f64>> {
        let n = self.dimension();
        let mut z = vec![Complex64::ZERO; n];
        let mut paths = vec![Vec::with_capacity(count); n];
        for _ in 0..count {
            self.sample_gaussian_into(&mut z);
            for (j, path) in paths.iter_mut().enumerate() {
                path.push(z[j].abs());
            }
        }
        paths
    }
}

impl ChannelStream for CorrelatedRayleighGenerator {
    fn dimension(&self) -> usize {
        self.coloring.dimension()
    }

    /// The configured snapshot batch size — see
    /// [`CorrelatedRayleighGenerator::stream_block_len`].
    fn block_len(&self) -> usize {
        self.stream_block_len
    }

    /// Batches `block_len()` independent snapshots into one planar block:
    /// sample `l` of the block is the `l`-th snapshot, drawn in exactly the
    /// order of repeated [`CorrelatedRayleighGenerator::sample_gaussian`]
    /// calls (bit-identical for equal seeds).
    fn next_block_into(&mut self, block: &mut SampleBlock) -> Result<(), CorrfadeError> {
        let n = self.coloring.dimension();
        let m = self.stream_block_len;
        block.resize(n, m);
        self.w.resize(n, Complex64::ZERO);
        self.z.resize(n, Complex64::ZERO);
        let variance = self.driving_variance;
        let scale = 1.0 / variance.sqrt();
        for l in 0..m {
            {
                let Self {
                    rng, gaussian, w, ..
                } = self;
                gaussian.fill(rng, w, variance);
            }
            self.coloring.matrix.matvec_into(&self.w, &mut self.z);
            let data = block.as_mut_slice();
            for j in 0..n {
                data[j * m + l] = self.z[j].scale(scale);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};
    use corrfade_stats::{relative_frobenius_error, sample_covariance};

    #[test]
    fn basic_accessors() {
        let k = paper_covariance_matrix_22();
        let g = CorrelatedRayleighGenerator::new(k.clone(), 1).unwrap();
        assert_eq!(g.dimension(), 3);
        assert_eq!(g.driving_variance(), 1.0);
        assert!(g.desired_covariance().approx_eq(&k, 0.0));
        assert!(g.realized_covariance().approx_eq(&k, 1e-10));
        assert_eq!(g.coloring().dimension(), 3);
    }

    #[test]
    fn sample_shape_and_envelope_consistency() {
        let mut g = CorrelatedRayleighGenerator::new(paper_covariance_matrix_23(), 2).unwrap();
        let s = g.sample();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        for (z, &r) in s.gaussian.iter().zip(s.envelopes.iter()) {
            assert!((z.abs() - r).abs() < 1e-15);
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn reproducible_across_equal_seeds() {
        let k = paper_covariance_matrix_22();
        let mut a = CorrelatedRayleighGenerator::new(k.clone(), 99).unwrap();
        let mut b = CorrelatedRayleighGenerator::new(k.clone(), 99).unwrap();
        let mut c = CorrelatedRayleighGenerator::new(k, 100).unwrap();
        assert_eq!(a.sample(), b.sample());
        assert_ne!(a.sample(), c.sample());
    }

    #[test]
    fn sample_covariance_converges_to_desired_covariance() {
        // The central claim of Sec. 4.5: E[Z Z^H] = K.
        let k = paper_covariance_matrix_22();
        let mut g = CorrelatedRayleighGenerator::new(k.clone(), 7).unwrap();
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        let err = relative_frobenius_error(&khat, &k);
        assert!(err < 0.03, "relative covariance error {err}");
    }

    #[test]
    fn result_is_invariant_to_driving_variance() {
        // E[Z Z^H] = K for any σ_g² of the white vector W.
        let k = paper_covariance_matrix_23();
        for &var in &[0.1, 1.0, 17.0] {
            let mut g =
                CorrelatedRayleighGenerator::with_driving_variance(k.clone(), var, 11).unwrap();
            let snaps = g.generate_snapshots(40_000);
            let khat = sample_covariance(&snaps);
            let err = relative_frobenius_error(&khat, &k);
            assert!(err < 0.04, "driving variance {var}: relative error {err}");
        }
    }

    #[test]
    fn unequal_power_envelopes_have_the_requested_powers() {
        // Unequal powers on the diagonal: 1.0, 4.0, 0.25.
        let k = CMatrix::from_rows(&[
            vec![c64(1.0, 0.0), c64(0.5, 0.5), c64(0.1, 0.0)],
            vec![c64(0.5, -0.5), c64(4.0, 0.0), c64(0.2, -0.3)],
            vec![c64(0.1, 0.0), c64(0.2, 0.3), c64(0.25, 0.0)],
        ]);
        let mut g = CorrelatedRayleighGenerator::new(k.clone(), 3).unwrap();
        let paths = g.generate_envelope_paths(50_000);
        for (j, path) in paths.iter().enumerate() {
            let power = corrfade_stats::mean_square(path);
            let expected = k[(j, j)].re;
            assert!(
                (power - expected).abs() / expected < 0.05,
                "envelope {j}: power {power}, expected {expected}"
            );
        }
    }

    #[test]
    fn envelope_moments_match_paper_eq_14_15() {
        let k = paper_covariance_matrix_22();
        let mut g = CorrelatedRayleighGenerator::new(k, 5).unwrap();
        let paths = g.generate_envelope_paths(60_000);
        for path in &paths {
            let check = corrfade_stats::check_envelope_moments(path, 1.0);
            assert!(
                check.max_relative_error() < 0.05,
                "envelope moments deviate: {check:?}"
            );
        }
    }

    #[test]
    fn generated_envelopes_pass_rayleigh_ks_test() {
        let k = paper_covariance_matrix_23();
        let mut g = CorrelatedRayleighGenerator::new(k, 13).unwrap();
        let paths = g.generate_envelope_paths(20_000);
        for path in &paths {
            let sigma = corrfade_stats::rayleigh_scale(1.0);
            let t = corrfade_stats::ks_test(path, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
            assert!(
                t.passes(0.001),
                "KS test rejected a generated envelope: {t:?}"
            );
        }
    }

    #[test]
    fn indefinite_covariance_realizes_its_psd_projection() {
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        let mut g = CorrelatedRayleighGenerator::new(k.clone(), 21).unwrap();
        assert!(g.coloring().psd.clipped_count > 0);
        let forced = g.realized_covariance();
        let snaps = g.generate_snapshots(60_000);
        let khat = sample_covariance(&snaps);
        // Converges to the forced matrix, not (and necessarily not) to K.
        assert!(relative_frobenius_error(&khat, &forced) < 0.03);
        assert!(relative_frobenius_error(&forced, &k) > 0.01);
    }

    #[test]
    fn streaming_batches_match_snapshot_draws_bit_for_bit() {
        let k = paper_covariance_matrix_22();
        let mut snap = CorrelatedRayleighGenerator::new(k.clone(), 31).unwrap();
        let mut stream = CorrelatedRayleighGenerator::new(k, 31)
            .unwrap()
            .with_stream_block_len(17);
        assert_eq!(ChannelStream::block_len(&stream), 17);
        let snaps = snap.generate_snapshots(2 * 17);
        let mut block = SampleBlock::empty();
        for b in 0..2 {
            stream.next_block_into(&mut block).unwrap();
            for l in 0..17 {
                for (j, &expected) in snaps[b * 17 + l].iter().enumerate() {
                    assert_eq!(block.path(j)[l], expected);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "stream block length must be positive")]
    fn zero_stream_block_len_rejected() {
        let mut g = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 1).unwrap();
        g.set_stream_block_len(0);
    }

    #[test]
    fn invalid_driving_variance_rejected() {
        let k = paper_covariance_matrix_22();
        assert!(matches!(
            CorrelatedRayleighGenerator::with_driving_variance(k, 0.0, 1),
            Err(CorrfadeError::InvalidDrivingVariance { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "expected a vector of length")]
    fn color_checks_dimension() {
        let g = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 1).unwrap();
        let _ = g.color(&[Complex64::ZERO], 1.0);
    }
}

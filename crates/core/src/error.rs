//! Error type of the core generator.

use core::fmt;

use corrfade_dsp::DspError;
use corrfade_linalg::LinalgError;
use corrfade_models::CovarianceBuildError;

/// Errors produced while configuring or running the correlated Rayleigh
/// generators.
#[derive(Debug, Clone, PartialEq)]
pub enum CorrfadeError {
    /// The supplied covariance matrix is not square.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// The supplied covariance matrix is not Hermitian.
    NotHermitian {
        /// Largest deviation `max |K_ij − conj(K_ji)|`.
        deviation: f64,
    },
    /// A diagonal entry (power) of the covariance matrix is negative.
    NegativePower {
        /// Index of the offending envelope.
        index: usize,
        /// The value found on the diagonal.
        value: f64,
    },
    /// The generator was asked for zero envelopes.
    EmptyCovariance,
    /// The driving variance `σ_g²` of the white Gaussian vector `W` must be
    /// strictly positive.
    InvalidDrivingVariance {
        /// The supplied variance.
        value: f64,
    },
    /// An error bubbled up from the linear-algebra layer.
    Linalg(LinalgError),
    /// An error bubbled up from the DSP layer (Doppler filter / IDFT).
    Dsp(DspError),
    /// An error bubbled up from the covariance-model layer.
    Model(CovarianceBuildError),
    /// Builder misuse: no covariance source was configured.
    MissingCovariance,
    /// Builder misuse: the number of powers does not match the covariance
    /// dimension.
    PowerDimensionMismatch {
        /// Dimension of the covariance matrix.
        expected: usize,
        /// Number of powers supplied.
        actual: usize,
    },
}

impl fmt::Display for CorrfadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorrfadeError::NotSquare { rows, cols } => {
                write!(f, "covariance matrix must be square, got {rows}×{cols}")
            }
            CorrfadeError::NotHermitian { deviation } => write!(
                f,
                "covariance matrix must be Hermitian (max |K_ij - conj(K_ji)| = {deviation:.3e})"
            ),
            CorrfadeError::NegativePower { index, value } => write!(
                f,
                "diagonal entry {index} of the covariance matrix must be a non-negative power, got {value}"
            ),
            CorrfadeError::EmptyCovariance => write!(f, "covariance matrix must have at least one envelope"),
            CorrfadeError::InvalidDrivingVariance { value } => {
                write!(f, "driving variance must be strictly positive, got {value}")
            }
            CorrfadeError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CorrfadeError::Dsp(e) => write!(f, "DSP error: {e}"),
            CorrfadeError::Model(e) => write!(f, "covariance model error: {e}"),
            CorrfadeError::MissingCovariance => {
                write!(f, "no covariance source configured: call covariance(), spectral_model() or spatial_model()")
            }
            CorrfadeError::PowerDimensionMismatch { expected, actual } => write!(
                f,
                "number of powers ({actual}) does not match the covariance dimension ({expected})"
            ),
        }
    }
}

impl std::error::Error for CorrfadeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorrfadeError::Linalg(e) => Some(e),
            CorrfadeError::Dsp(e) => Some(e),
            CorrfadeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CorrfadeError {
    fn from(e: LinalgError) -> Self {
        CorrfadeError::Linalg(e)
    }
}

impl From<DspError> for CorrfadeError {
    fn from(e: DspError) -> Self {
        CorrfadeError::Dsp(e)
    }
}

impl From<CovarianceBuildError> for CorrfadeError {
    fn from(e: CovarianceBuildError) -> Self {
        CorrfadeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<CorrfadeError> = vec![
            CorrfadeError::NotSquare { rows: 2, cols: 3 },
            CorrfadeError::NotHermitian { deviation: 0.1 },
            CorrfadeError::NegativePower {
                index: 0,
                value: -1.0,
            },
            CorrfadeError::EmptyCovariance,
            CorrfadeError::InvalidDrivingVariance { value: 0.0 },
            CorrfadeError::MissingCovariance,
            CorrfadeError::PowerDimensionMismatch {
                expected: 3,
                actual: 2,
            },
            CorrfadeError::Linalg(LinalgError::NotSquare { rows: 1, cols: 2 }),
            CorrfadeError::Dsp(DspError::InvalidVariance { value: -1.0 }),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_preserve_the_source() {
        use std::error::Error;
        let e: CorrfadeError = LinalgError::NotSquare { rows: 1, cols: 2 }.into();
        assert!(e.source().is_some());
        let e: CorrfadeError = DspError::InvalidLength {
            length: 1,
            minimum: 8,
        }
        .into();
        assert!(e.source().is_some());
        let e = CorrfadeError::EmptyCovariance;
        assert!(e.source().is_none());
    }
}

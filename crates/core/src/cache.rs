//! Process-wide decomposition cache for coloring matrices.
//!
//! Opening a generator costs one Hermitian eigendecomposition (or Cholesky
//! factorization, for the baseline methods) of the desired covariance
//! matrix. A single stream amortizes that over its lifetime, but a service
//! opening many streams — a batch fleet over named scenarios, the parallel
//! engine handling repeated requests for the same matrix — pays it once per
//! *open* unless the factorizations are shared. This module provides that
//! sharing: two bounded process-wide [`FactorCache`]s keyed by the **exact
//! bit pattern** of the covariance matrix ([`MatrixKey`]), one for the
//! paper's eigen-coloring and one for the conventional Cholesky coloring.
//!
//! The backing cache is sharded: hits take only a shared read guard on one
//! stripe (concurrent opens of warm scenarios never serialize on a lock),
//! and a miss runs the decomposition with **no lock held** — concurrent
//! first opens of the same matrix elect one leader that factorizes exactly
//! once while the rest wait for the published value. Eviction is
//! least-recently-used per stripe.
//!
//! Because the key is bitwise and both factorizations are deterministic
//! functions of their input, a cache hit returns a value bit-identical to
//! what a fresh [`eigen_coloring`] / [`cholesky_coloring`] call would
//! produce — the scalar-backend golden tests pin this. The counters
//! ([`coloring_cache_stats`]) make the sharing observable: opening two
//! scenarios with the same covariance spec must show up as a hit, not a
//! second decomposition.

use std::sync::Arc;

use corrfade_linalg::{CMatrix, CacheStats, FactorCache, MatrixKey};

use crate::coloring::{cholesky_coloring, eigen_coloring, Coloring};
use crate::error::CorrfadeError;

/// Capacity of each coloring cache. Far above the number of distinct
/// covariance matrices any realistic workload touches (the scenario
/// registry holds a few dozen); acts as a safety valve for workloads that
/// sweep many matrices (property tests, parameter scans).
pub const COLORING_CACHE_CAPACITY: usize = 128;

static EIGEN_CACHE: FactorCache<Coloring> = FactorCache::new(COLORING_CACHE_CAPACITY);
static CHOLESKY_CACHE: FactorCache<CMatrix> = FactorCache::new(COLORING_CACHE_CAPACITY);

/// [`eigen_coloring`] through the process-wide decomposition cache: the
/// first request for a given covariance bit pattern computes and stores the
/// coloring (outside any lock, exactly once even under concurrent first
/// requests), every later request for the same matrix shares it through a
/// read-only lookup.
///
/// The returned value is bit-identical to what an uncached
/// [`eigen_coloring`] call would produce. Callers that need an owned
/// [`Coloring`] (e.g. [`crate::RealtimeGenerator::from_coloring`]) clone the
/// `Arc`'s contents — still far cheaper than re-decomposing.
///
/// # Errors
/// Propagates the validation / decomposition errors of [`eigen_coloring`];
/// failed computations are not cached.
pub fn cached_eigen_coloring(k: &CMatrix) -> Result<Arc<Coloring>, CorrfadeError> {
    EIGEN_CACHE.get_or_try_insert_with(MatrixKey::of(k), || eigen_coloring(k))
}

/// [`cholesky_coloring`] through the process-wide decomposition cache; see
/// [`cached_eigen_coloring`] for the sharing and bit-identity contract.
///
/// # Errors
/// Propagates the errors of [`cholesky_coloring`] (non-positive-definite
/// matrices); failures are not cached.
pub fn cached_cholesky_coloring(k: &CMatrix) -> Result<Arc<CMatrix>, CorrfadeError> {
    CHOLESKY_CACHE.get_or_try_insert_with(MatrixKey::of(k), || cholesky_coloring(k))
}

/// Combined counters of the eigen- and Cholesky-coloring caches (hits and
/// misses summed over both).
pub fn coloring_cache_stats() -> CacheStats {
    let e = EIGEN_CACHE.stats();
    let c = CHOLESKY_CACHE.stats();
    CacheStats {
        hits: e.hits + c.hits,
        misses: e.misses + c.misses,
        evictions: e.evictions + c.evictions,
        entries: e.entries + c.entries,
    }
}

/// Drops every cached decomposition (colorings still referenced through
/// outstanding `Arc`s stay alive). Mainly for benchmarks that want to
/// measure the cold-open path.
pub fn clear_coloring_caches() {
    EIGEN_CACHE.clear();
    CHOLESKY_CACHE.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_linalg::c64;

    /// One combined test: the counters are process-wide, so interleaved
    /// assertions from concurrently running tests could race; all checks on
    /// deltas live here and only ever assert monotone lower bounds.
    #[test]
    fn caches_share_hit_and_stay_bit_identical() {
        // A matrix unique to this test so concurrent cache users cannot
        // pre-populate our key.
        let k = CMatrix::from_rows(&[
            vec![c64(1.25, 0.0), c64(0.31, 0.17)],
            vec![c64(0.31, -0.17), c64(0.75, 0.0)],
        ]);

        let before = coloring_cache_stats();
        let first = cached_eigen_coloring(&k).unwrap();
        let second = cached_eigen_coloring(&k).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup must share the stored decomposition"
        );
        let after = coloring_cache_stats();
        assert!(after.misses > before.misses);
        assert!(after.hits > before.hits);

        // Bit-identical to the uncached path.
        let uncached = eigen_coloring(&k).unwrap();
        assert_eq!(
            first.matrix.as_slice(),
            uncached.matrix.as_slice(),
            "cached coloring must be bit-identical to a fresh computation"
        );

        let chol_a = cached_cholesky_coloring(&k).unwrap();
        let chol_b = cached_cholesky_coloring(&k).unwrap();
        assert!(Arc::ptr_eq(&chol_a, &chol_b));
        assert_eq!(chol_a.as_slice(), cholesky_coloring(&k).unwrap().as_slice());
    }

    #[test]
    fn failures_are_reported_and_not_cached() {
        let bad = CMatrix::zeros(2, 3);
        assert!(cached_eigen_coloring(&bad).is_err());
        assert!(cached_eigen_coloring(&bad).is_err());
        // Not positive definite: Cholesky fails, eigen-coloring clips.
        let singular = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(cached_cholesky_coloring(&singular).is_err());
        assert!(cached_eigen_coloring(&singular).is_ok());
    }
}

//! Coloring-matrix computation (step 5 of the algorithm, paper Sec. 4.3).
//!
//! A *coloring matrix* of a covariance matrix `K` is any matrix `L` with
//! `L·Lᴴ = K`; multiplying a white complex Gaussian vector by `L` produces a
//! vector with covariance `K`. The conventional methods obtain `L` by
//! Cholesky factorization, which requires `K` to be positive definite. The
//! paper instead uses the eigendecomposition of the (PSD-forced) matrix:
//!
//! ```text
//! K̄ = V·Λ̂·Vᴴ,     Λ̄ = √Λ̂,     L = V·Λ̄     ⇒     L·Lᴴ = K̄
//! ```
//!
//! which exists for every Hermitian PSD matrix, including singular ones, and
//! is immune to the round-off failures MATLAB's `chol` exhibits near
//! singularity.

use corrfade_linalg::{cholesky, CMatrix};

use crate::error::CorrfadeError;
use crate::psd::{force_positive_semidefinite, PsdForcing};

/// A coloring matrix together with the PSD-forcing metadata that produced it.
#[derive(Debug, Clone)]
pub struct Coloring {
    /// The coloring matrix `L = V·√Λ̂` (square, not triangular).
    pub matrix: CMatrix,
    /// The PSD-forcing outcome (`forced` is the covariance actually realized
    /// by the generator: `L·Lᴴ = forced`).
    pub psd: PsdForcing,
}

impl Coloring {
    /// The covariance realized by this coloring, `L·Lᴴ` (equals the desired
    /// covariance when that was PSD, its Frobenius-closest PSD approximation
    /// otherwise).
    pub fn realized_covariance(&self) -> CMatrix {
        self.matrix.aat_adjoint()
    }

    /// Number of envelopes.
    pub fn dimension(&self) -> usize {
        self.matrix.rows()
    }
}

/// Computes the eigendecomposition-based coloring matrix of a (possibly
/// non-PSD) Hermitian covariance matrix: PSD-force it, then `L = V·√Λ̂`.
///
/// # Errors
/// Propagates the validation / decomposition errors of
/// [`force_positive_semidefinite`].
pub fn eigen_coloring(k: &CMatrix) -> Result<Coloring, CorrfadeError> {
    let psd = force_positive_semidefinite(k)?;
    let sqrt_lambda: Vec<f64> = psd.clipped_eigenvalues.iter().map(|&l| l.sqrt()).collect();
    let matrix = psd
        .eigen
        .eigenvectors
        .matmul(&CMatrix::from_real_diag(&sqrt_lambda));
    Ok(Coloring { matrix, psd })
}

/// Computes a lower-triangular Cholesky coloring matrix, the construction
/// used by the conventional methods (refs \[3\]–\[6\]).
///
/// # Errors
/// Fails with [`CorrfadeError::Linalg`] whenever `K` is not positive
/// definite — exactly the limitation the eigen coloring removes.
pub fn cholesky_coloring(k: &CMatrix) -> Result<CMatrix, CorrfadeError> {
    crate::psd::validate_covariance(k)?;
    Ok(cholesky(k)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

    #[test]
    fn eigen_coloring_reproduces_psd_covariances() {
        for k in [paper_covariance_matrix_22(), paper_covariance_matrix_23()] {
            let c = eigen_coloring(&k).unwrap();
            assert_eq!(c.dimension(), 3);
            assert!(
                c.realized_covariance().approx_eq(&k, 1e-10),
                "L·L^H must reproduce the desired covariance"
            );
            assert_eq!(c.psd.clipped_count, 0);
        }
    }

    #[test]
    fn eigen_and_cholesky_colorings_realize_the_same_covariance() {
        let k = paper_covariance_matrix_22();
        let eig = eigen_coloring(&k).unwrap();
        let chol = cholesky_coloring(&k).unwrap();
        assert!(chol
            .aat_adjoint()
            .approx_eq(&eig.realized_covariance(), 1e-10));
        // The factors themselves differ (eigen coloring is not triangular).
        assert!(chol.max_abs_diff(&eig.matrix) > 1e-3);
    }

    #[test]
    fn eigen_coloring_handles_singular_covariance_where_cholesky_fails() {
        // Fully correlated pair: PSD but rank-1.
        let k = CMatrix::from_real_slice(2, 2, &[1.0, 1.0, 1.0, 1.0]);
        assert!(cholesky_coloring(&k).is_err());
        let c = eigen_coloring(&k).unwrap();
        assert!(c.realized_covariance().approx_eq(&k, 1e-10));
    }

    #[test]
    fn eigen_coloring_handles_indefinite_covariance() {
        let k = CMatrix::from_real_slice(3, 3, &[1.0, 0.9, -0.9, 0.9, 1.0, 0.9, -0.9, 0.9, 1.0]);
        assert!(cholesky_coloring(&k).is_err());
        let c = eigen_coloring(&k).unwrap();
        // Realizes the forced (closest PSD) covariance, not K itself.
        assert!(c.realized_covariance().approx_eq(&c.psd.forced, 1e-10));
        assert!(c.psd.clipped_count > 0);
        assert!(c.realized_covariance().max_abs_diff(&k) > 1e-3);
    }

    #[test]
    fn zero_covariance_yields_zero_coloring() {
        let k = CMatrix::zeros(3, 3);
        let c = eigen_coloring(&k).unwrap();
        assert!(c.matrix.approx_eq(&CMatrix::zeros(3, 3), 1e-14));
    }
}

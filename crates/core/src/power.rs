//! Desired-power specification (step 1 of the algorithm, paper Eq. 11).
//!
//! The user can start either from the desired powers of the **Rayleigh
//! envelopes** (`σ_r²`, what a link-budget usually specifies) or from the
//! powers of the underlying **complex Gaussian** variables (`σ_g²`, what the
//! covariance matrix contains on its diagonal). Eq. (11) converts the first
//! into the second:
//!
//! ```text
//! σ_g² = σ_r² / (1 − π/4)
//! ```

use corrfade_stats::gaussian_variance_from_envelope_variance;

use crate::error::CorrfadeError;

/// How the per-envelope powers are specified.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerSpec {
    /// Powers of the complex Gaussian variables, `σ_g²_j` (used directly on
    /// the diagonal of the covariance matrix).
    Gaussian(Vec<f64>),
    /// Desired variances of the Rayleigh envelopes, `σ_r²_j`; converted by
    /// Eq. (11).
    Envelope(Vec<f64>),
}

impl PowerSpec {
    /// Equal Gaussian power `σ_g²` for `n` envelopes.
    pub fn equal_gaussian(n: usize, sigma_g_sq: f64) -> Self {
        PowerSpec::Gaussian(vec![sigma_g_sq; n])
    }

    /// Equal envelope power `σ_r²` for `n` envelopes.
    pub fn equal_envelope(n: usize, sigma_r_sq: f64) -> Self {
        PowerSpec::Envelope(vec![sigma_r_sq; n])
    }

    /// Number of envelopes described.
    pub fn len(&self) -> usize {
        match self {
            PowerSpec::Gaussian(v) | PowerSpec::Envelope(v) => v.len(),
        }
    }

    /// `true` when no envelopes are described.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves the specification into the Gaussian powers `σ_g²_j` that go
    /// on the diagonal of the covariance matrix (applying Eq. 11 where
    /// needed).
    ///
    /// # Errors
    /// [`CorrfadeError::NegativePower`] if any power is negative or NaN,
    /// [`CorrfadeError::EmptyCovariance`] if the list is empty.
    pub fn gaussian_powers(&self) -> Result<Vec<f64>, CorrfadeError> {
        let raw = match self {
            PowerSpec::Gaussian(v) | PowerSpec::Envelope(v) => v,
        };
        if raw.is_empty() {
            return Err(CorrfadeError::EmptyCovariance);
        }
        for (i, &p) in raw.iter().enumerate() {
            if p < 0.0 || p.is_nan() {
                return Err(CorrfadeError::NegativePower { index: i, value: p });
            }
        }
        Ok(match self {
            PowerSpec::Gaussian(v) => v.clone(),
            PowerSpec::Envelope(v) => v
                .iter()
                .map(|&sr2| gaussian_variance_from_envelope_variance(sr2))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_spec_passes_through() {
        let p = PowerSpec::Gaussian(vec![1.0, 2.0]);
        assert_eq!(p.gaussian_powers().unwrap(), vec![1.0, 2.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn envelope_spec_applies_eq_11() {
        let p = PowerSpec::Envelope(vec![1.0]);
        let g = p.gaussian_powers().unwrap();
        assert!((g[0] - 1.0 / (1.0 - core::f64::consts::PI / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn equal_constructors() {
        assert_eq!(
            PowerSpec::equal_gaussian(3, 2.0).gaussian_powers().unwrap(),
            vec![2.0; 3]
        );
        let e = PowerSpec::equal_envelope(2, 0.2146);
        let g = e.gaussian_powers().unwrap();
        // σr² = 0.2146 corresponds (to 4 digits) to σg² = 1 (Eq. 15 inverted).
        assert!((g[0] - 1.0).abs() < 1e-3);
        assert!((g[1] - g[0]).abs() < 1e-15);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(matches!(
            PowerSpec::Gaussian(vec![]).gaussian_powers(),
            Err(CorrfadeError::EmptyCovariance)
        ));
        assert!(matches!(
            PowerSpec::Envelope(vec![1.0, -2.0]).gaussian_powers(),
            Err(CorrfadeError::NegativePower { index: 1, .. })
        ));
        assert!(matches!(
            PowerSpec::Gaussian(vec![f64::NAN]).gaussian_powers(),
            Err(CorrfadeError::NegativePower { index: 0, .. })
        ));
    }
}

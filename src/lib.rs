//! # corrfade-suite
//!
//! Workspace umbrella crate: re-exports every `corrfade` sub-crate under one
//! roof and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! Library users normally depend on the [`corrfade`] crate directly; this
//! crate exists so `cargo run --example …` and `cargo test` at the workspace
//! root exercise the whole stack.

#![warn(missing_docs)]

pub use corrfade;
pub use corrfade_baselines as baselines;
pub use corrfade_dsp as dsp;
pub use corrfade_linalg as linalg;
pub use corrfade_models as models;
pub use corrfade_parallel as parallel;
pub use corrfade_randn as randn;
pub use corrfade_scenarios as scenarios;
pub use corrfade_specfun as specfun;
pub use corrfade_stats as stats;

/// The version of the workspace, for examples that print a banner.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}

//! Wire-equivalence regression tests: blocks delivered by `corrfade-serve`
//! over a real socket must be **bit-identical** (`f64::to_bits`) to the
//! blocks a standalone `Scenario::build_realtime(seed)` stream produces —
//! across scenarios, seeds, and both transports (TCP and Unix-domain).
//!
//! This is the protocol-level counterpart of `fleet_equivalence.rs`: that
//! suite pins the in-process fleet, this one pins encode → socket →
//! decode on top of it. Together they guarantee a remote consumer of the
//! serving layer reproduces the paper's generator exactly.

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::lookup;
use corrfade_serve::{Client, ServeAddr, Server, ServerConfig};

/// Scenario spread: both paper figures, the complex-covariance extension
/// and the near-singular stress case — different envelope counts and
/// covariance families.
const SCENARIOS: [&str; 4] = [
    "fig4a-spectral",
    "fig4b-spatial",
    "two-envelope-complex",
    "near-singular-eps1e6",
];

const SEEDS: [u64; 3] = [1, 42, 0xDEAD_BEEF];
const BLOCKS: u32 = 3;

/// The bit pattern of every sample of a block, in planar order.
fn bits(block: &SampleBlock) -> Vec<u64> {
    block
        .as_slice()
        .iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

/// Streams `BLOCKS` blocks standalone — the ground truth.
fn standalone(scenario: &str, seed: u64) -> Vec<Vec<u64>> {
    let mut stream = lookup(scenario).unwrap().build_realtime(seed).unwrap();
    let mut block = SampleBlock::empty();
    (0..BLOCKS)
        .map(|_| {
            stream.next_block_into(&mut block).unwrap();
            bits(&block)
        })
        .collect()
}

/// Streams `BLOCKS` blocks through a live server connection, checking the
/// header echo and decoding into one pooled block like a real consumer.
fn over_the_wire(addr: &ServeAddr, scenario: &str, seed: u64) -> Vec<Vec<u64>> {
    let reference = lookup(scenario).unwrap();
    let mut client = Client::connect(addr).unwrap();
    let header = client.subscribe(scenario, seed, BLOCKS).unwrap();
    assert_eq!(header.envelopes as usize, reference.envelopes);
    assert_eq!(header.samples as usize, reference.doppler.idft_size);
    assert_eq!(header.blocks, BLOCKS);

    let mut block = SampleBlock::empty();
    let mut streamed = Vec::new();
    while let Some(index) = client.next_block_into(&mut block).unwrap() {
        assert_eq!(
            index as usize,
            streamed.len(),
            "blocks arrived out of order"
        );
        assert_eq!(block.envelopes(), reference.envelopes);
        assert_eq!(block.samples(), reference.doppler.idft_size);
        streamed.push(bits(&block));
    }
    streamed
}

fn assert_equivalent(addr: &ServeAddr, transport: &str) {
    for scenario in SCENARIOS {
        for seed in SEEDS {
            assert_eq!(
                over_the_wire(addr, scenario, seed),
                standalone(scenario, seed),
                "({scenario}, seed {seed}) over {transport} is not bit-identical \
                 to the standalone stream"
            );
        }
    }
}

#[test]
fn socket_streams_are_bit_identical_to_standalone_streams() {
    // One server instance serves every (scenario, seed) combination in
    // sequence — a fresh subscription each time, like real clients.
    let tcp = Server::bind(
        ServeAddr::Tcp("127.0.0.1:0".parse().unwrap()),
        ServerConfig::default(),
    )
    .unwrap();
    assert_equivalent(tcp.local_addr(), "tcp");
    let stats = tcp.stats();
    assert_eq!(stats.error_frames, 0);
    assert_eq!(
        stats.blocks_sent,
        (SCENARIOS.len() * SEEDS.len()) as u64 * u64::from(BLOCKS)
    );
    tcp.shutdown().unwrap();

    // The Unix-domain transport must frame the very same bytes.
    #[cfg(unix)]
    {
        let path = std::env::temp_dir().join(format!(
            "corrfade-wire-equivalence-{}.sock",
            std::process::id()
        ));
        let unix = Server::bind(ServeAddr::Unix(path.clone()), ServerConfig::default()).unwrap();
        assert_equivalent(unix.local_addr(), "unix");
        unix.shutdown().unwrap();
        assert!(!path.exists(), "shutdown must remove the socket file");
    }
}

//! Allocation-regression test: once a `ChannelStream` and its destination
//! [`SampleBlock`] are warm, `next_block_into` must perform **zero heap
//! allocation** — the core guarantee of the streaming redesign.
//!
//! A counting global allocator records every allocation of the test binary;
//! the test measures the delta across a window of streamed blocks after a
//! warm-up phase. The guarantee is also enforced end to end through the
//! multi-stream batch engine: a warm [`corrfade_parallel::StreamFleet`]
//! advance — every stream's block generated concurrently on the persistent
//! worker pool — must not allocate either, which pins the whole pipeline
//! (pool dispatch, per-stream locks, pinned blocks, generator scratch).
//! The whole file holds exactly one `#[test]` so no concurrently running
//! test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use corrfade::{
    ChannelStream, CorrelatedRayleighGenerator, Precision, RealtimeConfig, RealtimeGenerator,
    SampleBlock, SampleBlock32,
};
use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

/// A [`System`]-backed allocator that counts allocation calls.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to `System`; only adds a counter.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Streams `warmup + measured` blocks and returns the allocation count
/// observed over the measured window.
fn measure<S: ChannelStream>(stream: &mut S, block: &mut SampleBlock) -> usize {
    for _ in 0..2 {
        stream.next_block_into(block).unwrap();
    }
    let before = allocations();
    for _ in 0..8 {
        stream.next_block_into(block).unwrap();
    }
    allocations() - before
}

#[test]
fn next_block_into_is_allocation_free_after_warmup() {
    // Power-of-two M: the in-place IDFT path, as in every paper experiment.
    let mut block = SampleBlock::empty();

    for k in [paper_covariance_matrix_22(), paper_covariance_matrix_23()] {
        let cfg = RealtimeConfig {
            covariance: k.clone(),
            idft_size: 1024,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 1,
            precision: Precision::F64,
        };
        let mut realtime = RealtimeGenerator::new(cfg).unwrap();
        let delta = measure(&mut realtime, &mut block);
        assert_eq!(
            delta, 0,
            "RealtimeGenerator::next_block_into allocated {delta} time(s) after warm-up"
        );

        let mut single = CorrelatedRayleighGenerator::new(k, 1)
            .unwrap()
            .with_stream_block_len(512);
        let delta = measure(&mut single, &mut block);
        assert_eq!(
            delta, 0,
            "CorrelatedRayleighGenerator::next_block_into allocated {delta} time(s) after warm-up"
        );
    }

    // A non-power-of-two M exercises the Bluestein IDFT fallback: with the
    // process-wide plan cache and the thread-local convolution scratch warm,
    // odd lengths must stream allocation-free too.
    {
        let cfg = RealtimeConfig {
            covariance: paper_covariance_matrix_22(),
            idft_size: 1000,
            normalized_doppler: 0.04,
            sigma_orig_sq: 0.5,
            seed: 2,
            precision: Precision::F64,
        };
        let mut bluestein = RealtimeGenerator::new(cfg).unwrap();
        let delta = measure(&mut bluestein, &mut block);
        assert_eq!(
            delta, 0,
            "a warm non-power-of-two (Bluestein) stream allocated {delta} time(s)"
        );
    }

    // The f32 fast tier: both the widening `ChannelStream` surface and the
    // native `SampleBlock32` entry point must be allocation-free once warm.
    {
        let cfg = RealtimeConfig {
            covariance: paper_covariance_matrix_23(),
            idft_size: 1024,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
            seed: 3,
            precision: Precision::F32,
        };
        let mut f32_stream = RealtimeGenerator::new(cfg.clone()).unwrap();
        let delta = measure(&mut f32_stream, &mut block);
        assert_eq!(
            delta, 0,
            "a warm f32-tier stream allocated {delta} time(s) through next_block_into"
        );

        let mut native = RealtimeGenerator::new(cfg).unwrap();
        let mut half = SampleBlock32::empty();
        for _ in 0..2 {
            native.next_block32_into(&mut half).unwrap();
        }
        let before = allocations();
        for _ in 0..8 {
            native.next_block32_into(&mut half).unwrap();
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "a warm f32-tier stream allocated {delta} time(s) through next_block32_into"
        );
    }

    // The baseline streams honour the same contract: the flawed realtime
    // combination, the real-embedding generator (its own scratch path), and
    // one user of the shared snapshot-batching helper (which also covers
    // BeaulieuMerani and Natarajan).
    let k = paper_covariance_matrix_23();
    let mut baseline =
        corrfade_baselines::SorooshyariDautRealtimeGenerator::new(&k, 1024, 0.05, 0.5, 1).unwrap();
    let delta = measure(&mut baseline, &mut block);
    assert_eq!(
        delta, 0,
        "SorooshyariDautRealtimeGenerator::next_block_into allocated {delta} time(s) after warm-up"
    );

    let mut salz = corrfade_baselines::SalzWintersGenerator::new(&k, 1).unwrap();
    let delta = measure(&mut salz, &mut block);
    assert_eq!(
        delta, 0,
        "SalzWintersGenerator::next_block_into allocated {delta} time(s) after warm-up"
    );

    let mut sd = corrfade_baselines::SorooshyariDautGenerator::new(&k, 1).unwrap();
    let delta = measure(&mut sd, &mut block);
    assert_eq!(
        delta, 0,
        "SorooshyariDautGenerator::next_block_into allocated {delta} time(s) after warm-up"
    );

    // The multi-stream fleet: K named scenarios generated concurrently on
    // the persistent worker pool. Warm-up spawns the global pool, sizes the
    // per-stream blocks and the workers' pinned scratch; after that, a full
    // fleet advance must be allocation-free end to end (pool handshake,
    // stream locks, Doppler generation, coloring).
    let mut fleet = corrfade_parallel::StreamFleet::open(
        &["fig4a-spectral", "fig4b-spatial", "two-envelope-complex"],
        1,
    )
    .unwrap();
    for _ in 0..2 {
        fleet.advance().unwrap();
    }
    let before = allocations();
    for _ in 0..8 {
        fleet.advance().unwrap();
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "StreamFleet::advance allocated {delta} time(s) after warm-up"
    );

    // The network layer on top of the fleet: a warm epoch — lockstep advance
    // of every correlated group plus a full per-link trace-extraction pass
    // (envelope view, outage/LCR/AFD metrics through the `_block`
    // estimators) — must be allocation-free end to end. The warm-up pays for
    // the envelope caches of each group block; after that the metrics read
    // straight out of the fleet's buffers.
    {
        use corrfade_network::{NetworkSim, NetworkSimConfig, Topology};
        use corrfade_scenarios::DopplerSettings;

        let cfg = NetworkSimConfig {
            doppler: DopplerSettings {
                idft_size: 512,
                normalized_doppler: 0.05,
                sigma_orig_sq: 0.5,
            },
            precision: Precision::from_test_env(),
            ..NetworkSimConfig::default()
        };
        let mut sim = NetworkSim::open(Topology::grid(3, 3, 1.0).unwrap(), &cfg, 1).unwrap();
        let epoch = |sim: &mut NetworkSim| {
            sim.advance().unwrap();
            for link in 0..sim.link_count() {
                let m = sim.link_metrics(link).unwrap();
                assert!(m.outage_probability.is_finite());
            }
        };
        for _ in 0..2 {
            epoch(&mut sim);
        }
        let before = allocations();
        for _ in 0..8 {
            epoch(&mut sim);
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "a warm NetworkSim epoch (advance + per-link metrics) allocated {delta} time(s)"
        );
    }

    // The serving layer, end to end through a real Unix-domain socket: a
    // warm server connection's steady state — `advance_subscriber_with` on
    // the shared fleet, block-frame encode into the pooled wire buffer,
    // `write_all`, plus the client's frame read and planar decode into its
    // pooled block — must not allocate either. The warm-up covers the
    // handshake, the capacity growth of both pooled buffers, and the
    // generator scratch; the measured window then spans whole
    // produce-transmit-consume round trips. (The server's accept thread is
    // parked in `accept()` and the connection thread only runs the code
    // under test, so no other thread can pollute the counter.)
    #[cfg(unix)]
    {
        let path = std::env::temp_dir().join(format!(
            "corrfade-alloc-regression-{}.sock",
            std::process::id()
        ));
        let server = corrfade_serve::Server::bind(
            corrfade_serve::ServeAddr::Unix(path),
            corrfade_serve::ServerConfig::default(),
        )
        .unwrap();
        let mut client = corrfade_serve::Client::connect(server.local_addr()).unwrap();
        client.subscribe("two-envelope-complex", 1, 32).unwrap();
        for _ in 0..4 {
            client.next_block_into(&mut block).unwrap().unwrap();
        }
        let before = allocations();
        for _ in 0..8 {
            client.next_block_into(&mut block).unwrap().unwrap();
        }
        let delta = allocations() - before;
        assert_eq!(
            delta, 0,
            "a warm serve connection allocated {delta} time(s) in steady state"
        );
        server.shutdown().unwrap();
    }
}

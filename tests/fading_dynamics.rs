//! Second-order fading dynamics of the real-time generator: level-crossing
//! rate (LCR) and average fade duration (AFD) against the closed-form
//! Rayleigh-fading expressions, plus the Doppler-bandwidth sanity checks a
//! link-level simulator user would rely on.
//!
//! These quantities are not tabulated in the paper, but they are the standard
//! acceptance criteria for any fading generator built on the Clarke/Jakes
//! model (Rappaport, the paper's ref. [9]); they fail loudly if either the
//! Doppler filter or the coloring step distorts the temporal statistics.

use corrfade::{RealtimeConfig, RealtimeGenerator};
use corrfade_models::paper_covariance_matrix_23;
use corrfade_stats::{
    empirical_afd, empirical_lcr, envelope_rms, theoretical_afd, theoretical_lcr,
};

fn long_envelope(fm: f64, blocks: usize, seed: u64) -> Vec<f64> {
    let mut gen = RealtimeGenerator::new(RealtimeConfig {
        covariance: paper_covariance_matrix_23(),
        idft_size: 4096,
        normalized_doppler: fm,
        sigma_orig_sq: 0.5,
        seed,
        precision: corrfade::Precision::F64,
    })
    .unwrap();
    let block = gen.generate_blocks(blocks);
    block.envelope_paths[0].clone()
}

#[test]
fn level_crossing_rate_matches_rayleigh_theory() {
    let fm = 0.05;
    let env = long_envelope(fm, 20, 0xFAD0);
    let rms = envelope_rms(&env);
    // LCR is most accurately estimated around the peak (rho ≈ 0.7); deep
    // thresholds have few events and need longer runs.
    for &rho in &[0.3f64, 0.5, 0.7, 1.0] {
        let measured = empirical_lcr(&env, rho * rms);
        let theory = theoretical_lcr(rho, fm);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.15,
            "LCR at rho = {rho}: measured {measured:.5}, theory {theory:.5} (rel {rel:.3})"
        );
    }
}

#[test]
fn average_fade_duration_matches_rayleigh_theory() {
    let fm = 0.05;
    let env = long_envelope(fm, 20, 0xFAD1);
    let rms = envelope_rms(&env);
    for &rho in &[0.3f64, 0.5, 1.0] {
        let measured = empirical_afd(&env, rho * rms);
        let theory = theoretical_afd(rho, fm);
        let rel = (measured - theory).abs() / theory;
        assert!(
            rel < 0.2,
            "AFD at rho = {rho}: measured {measured:.3}, theory {theory:.3} (rel {rel:.3})"
        );
    }
}

#[test]
fn lcr_scales_with_the_doppler_frequency() {
    // Doubling fm doubles the fade rate — the first-order sanity check of the
    // Doppler filter design.
    let rho = 0.7f64;
    let env_slow = long_envelope(0.02, 12, 0xFAD2);
    let env_fast = long_envelope(0.08, 12, 0xFAD3);
    let lcr_slow = empirical_lcr(&env_slow, rho * envelope_rms(&env_slow));
    let lcr_fast = empirical_lcr(&env_fast, rho * envelope_rms(&env_fast));
    let ratio = lcr_fast / lcr_slow;
    assert!(
        (ratio - 4.0).abs() < 0.8,
        "LCR ratio for fm 0.08 vs 0.02 should be ~4, got {ratio:.2}"
    );
}

#[test]
fn outage_probability_is_rayleigh() {
    // Pr[r < rho * Rrms] = 1 - exp(-rho^2) for a Rayleigh envelope,
    // independent of the Doppler rate.
    let env = long_envelope(0.05, 20, 0xFAD4);
    let rms = envelope_rms(&env);
    for &rho in &[0.1f64, 0.3, 1.0] {
        let measured = env.iter().filter(|&&r| r < rho * rms).count() as f64 / env.len() as f64;
        let theory = 1.0 - (-rho * rho).exp();
        assert!(
            (measured - theory).abs() < 0.01 + 0.1 * theory,
            "outage at rho = {rho}: measured {measured:.4}, theory {theory:.4}"
        );
    }
}

//! Regression tests that lock in the numbers the paper actually prints, so
//! any future change to the models or the special functions that would break
//! the reproduction is caught immediately.
//!
//! Sources: Sec. 6 of the paper (parameter derivations, Eq. 22, Eq. 23) and
//! the analytic constants of Eq. (11), (14), (15) and (21).

use corrfade_dsp::DopplerFilter;
use corrfade_linalg::c64;
use corrfade_models::{
    paper_spatial_scenario, paper_spectral_scenario, ChannelParams, SalzWintersSpatialModel,
};
use corrfade_stats::{envelope_mean, envelope_variance, gaussian_variance_from_envelope_variance};

/// Sec. 6: "Fs = 1kHz, Fm = 50Hz (corresponding to a carrier frequency
/// 900 MHz and a mobile speed v = 60 km/hr). Therefore, we have fm = 0.05,
/// km = 204."
#[test]
fn paper_derived_doppler_parameters() {
    let p = ChannelParams::paper_defaults();
    assert!((p.max_doppler_hz() - 50.0).abs() < 0.05);
    assert!((p.normalized_doppler() - 0.05).abs() < 5e-5);
    assert_eq!(p.doppler_band_edge(4096), 204);

    let filter = DopplerFilter::new(4096, 0.05).unwrap();
    assert_eq!(filter.km(), 204);
}

/// Eq. (22), all six independent complex entries to the paper's 4 decimals.
#[test]
fn paper_equation_22_entries() {
    let (model, freqs, delays) = paper_spectral_scenario();
    let k = model.covariance_matrix(&freqs, &delays).unwrap();
    let expected = [
        ((0usize, 1usize), c64(0.3782, 0.4753)),
        ((0, 2), c64(0.0878, 0.2207)),
        ((1, 2), c64(0.3063, 0.3849)),
    ];
    for ((i, j), value) in expected {
        assert!(
            k[(i, j)].approx_eq(value, 5e-4),
            "K[{i},{j}] = {} but the paper prints {value}",
            k[(i, j)]
        );
        assert!(k[(j, i)].approx_eq(value.conj(), 5e-4));
    }
    for i in 0..3 {
        assert!(k[(i, i)].approx_eq(c64(1.0, 0.0), 1e-12));
    }
}

/// Eq. (23), both independent entries to the paper's 4 decimals, and the
/// paper's remark that Φ = 0 makes the matrix real.
#[test]
fn paper_equation_23_entries() {
    let k = paper_spatial_scenario().covariance_matrix(3).unwrap();
    assert!((k[(0, 1)].re - 0.8123).abs() < 5e-4);
    assert!((k[(1, 2)].re - 0.8123).abs() < 5e-4);
    assert!((k[(0, 2)].re - 0.3730).abs() < 5e-4);
    for i in 0..3 {
        for j in 0..3 {
            assert!(k[(i, j)].im.abs() < 1e-9, "K must be real at Phi = 0");
        }
    }
}

/// Sec. 6: "D = 33.3 cm for GSM 900" at D/λ = 1.
#[test]
fn paper_antenna_spacing_for_gsm900() {
    let p = ChannelParams::paper_defaults();
    assert!((p.wavelength_m() * 100.0 - 33.3).abs() < 0.05);
}

/// Eq. (14) and (15): E{r} = 0.8862·σ_g, Var{r} = 0.2146·σ_g², and Eq. (11)
/// as their inverse.
#[test]
fn paper_envelope_moment_constants() {
    assert!((envelope_mean(1.0) - 0.8862).abs() < 5e-5);
    assert!((envelope_variance(1.0) - 0.2146).abs() < 5e-5);
    let sigma_g_sq = gaussian_variance_from_envelope_variance(0.2146);
    assert!((sigma_g_sq - 1.0).abs() < 5e-4);
}

/// Eq. (21): structural facts of the Doppler filter the paper re-states —
/// zero DC bin, zero stop band, symmetric band edges, and the closed-form
/// edge value.
#[test]
fn paper_equation_21_filter_structure() {
    let m = 4096usize;
    let fm = 0.05;
    let filter = DopplerFilter::new(m, fm).unwrap();
    let f = filter.coefficients();
    let km = filter.km();
    assert_eq!(f[0], 0.0);
    assert!(f[km] > 0.0);
    assert_eq!(f[km + 1], 0.0);
    assert_eq!(f[m - km - 1], 0.0);
    assert!((f[km] - f[m - km]).abs() < 1e-15);
    let km_f = km as f64;
    let edge = (km_f / 2.0
        * (std::f64::consts::FRAC_PI_2 - ((km_f - 1.0) / (2.0 * km_f - 1.0).sqrt()).atan()))
    .sqrt();
    assert!((f[km] - edge).abs() < 1e-12);
    // Interior pass-band sample, k = 100:
    let expected = (1.0 / (2.0 * (1.0 - (100.0 / (m as f64 * fm)).powi(2)).sqrt())).sqrt();
    assert!((f[100] - expected).abs() < 1e-12);
}

/// The paper's statement that both Eq. (22) and Eq. (23) are positive
/// definite (so no PSD forcing is triggered on the paper's own scenarios).
#[test]
fn paper_matrices_are_positive_definite_and_not_clipped() {
    for k in [
        paper_spectral_scenario()
            .0
            .covariance_matrix(&paper_spectral_scenario().1, &paper_spectral_scenario().2)
            .unwrap(),
        paper_spatial_scenario().covariance_matrix(3).unwrap(),
    ] {
        assert!(corrfade_linalg::is_positive_definite(&k));
        let f = corrfade::force_positive_semidefinite(&k).unwrap();
        assert!(f.was_positive_semidefinite);
        assert_eq!(f.clipped_count, 0);
    }
}

/// Off-broadside spatial scenarios produce complex covariances — the general
/// case the paper insists on supporting (its criticism of ref. [5]).
#[test]
fn off_broadside_spatial_covariances_are_complex() {
    let model = SalzWintersSpatialModel::new(1.0, 1.0, 0.5, std::f64::consts::PI / 18.0);
    let k = model.covariance_matrix(3).unwrap();
    assert!(k.is_hermitian(1e-12));
    assert!(k[(0, 1)].im.abs() > 1e-3);
    // And the generator still realizes it.
    let mut gen = corrfade::CorrelatedRayleighGenerator::new(k.clone(), 0xFACE).unwrap();
    let khat = corrfade_stats::sample_covariance(&gen.generate_snapshots(60_000));
    assert!(corrfade_stats::relative_frobenius_error(&khat, &k) < 0.03);
}

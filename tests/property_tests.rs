//! Property-based tests (proptest) on the workspace's core invariants:
//! linear algebra factorizations, the PSD-forcing step, the power
//! conversions and the generator's covariance realization — exercised on
//! randomly generated covariance structures rather than hand-picked ones.

use corrfade::{eigen_coloring, force_positive_semidefinite, CorrelatedRayleighGenerator};
use corrfade_linalg::{c64, hermitian_eigen, CMatrix};
use proptest::prelude::*;

/// Strategy: a random Hermitian matrix with unit diagonal and off-diagonal
/// entries of modulus < 1 (a "correlation-like" matrix, not necessarily
/// PSD).
fn correlation_like_matrix(max_n: usize) -> impl Strategy<Value = CMatrix> {
    (2..=max_n)
        .prop_flat_map(|n| {
            let pairs = n * (n - 1) / 2;
            (
                Just(n),
                proptest::collection::vec((-0.95f64..0.95, -0.95f64..0.95), pairs),
            )
        })
        .prop_map(|(n, offdiag)| {
            let mut k = CMatrix::identity(n);
            let mut it = offdiag.into_iter();
            for i in 0..n {
                for j in (i + 1)..n {
                    let (re, im) = it.next().unwrap();
                    // Scale so the modulus stays below 1.
                    let z = c64(re, im).scale(0.7);
                    k[(i, j)] = z;
                    k[(j, i)] = z.conj();
                }
            }
            k
        })
}

/// Strategy: a random Hermitian PSD matrix built as G·Gᴴ + small diagonal.
fn psd_matrix(max_n: usize) -> impl Strategy<Value = CMatrix> {
    (2..=max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n * n),
            )
        })
        .prop_map(|(n, entries)| {
            let g = CMatrix::from_vec(
                n,
                n,
                entries.into_iter().map(|(re, im)| c64(re, im)).collect(),
            );
            let mut k = g.aat_adjoint();
            for i in 0..n {
                k[(i, i)] = k[(i, i)] + 0.05;
            }
            k
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Hermitian eigendecomposition reconstructs its input and produces
    /// unitary eigenvectors, for arbitrary Hermitian matrices.
    #[test]
    fn eigendecomposition_reconstructs(k in correlation_like_matrix(8)) {
        let e = hermitian_eigen(&k).unwrap();
        let rec = e.reconstruct();
        prop_assert!(rec.approx_eq(&k, 1e-8), "reconstruction error {}", rec.max_abs_diff(&k));
        let vhv = e.eigenvectors.adjoint().matmul(&e.eigenvectors);
        prop_assert!(vhv.approx_eq(&CMatrix::identity(k.rows()), 1e-8));
        // Trace is preserved by the spectrum.
        let trace: f64 = (0..k.rows()).map(|i| k[(i, i)].re).sum();
        let spectrum_sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - spectrum_sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    /// PSD forcing always yields a PSD matrix that is never farther from the
    /// target (in Frobenius norm) than the ref.-[6] epsilon replacement.
    #[test]
    fn psd_forcing_is_psd_and_frobenius_optimal(k in correlation_like_matrix(8)) {
        let f = force_positive_semidefinite(&k).unwrap();
        let e = hermitian_eigen(&f.forced).unwrap();
        prop_assert!(e.is_positive_semidefinite(1e-8));

        let (eps_forced, _) = corrfade_baselines::epsilon_psd_forcing(&k, 1e-3).unwrap();
        prop_assert!(f.forced.frobenius_distance(&k) <= eps_forced.frobenius_distance(&k) + 1e-12);

        // Idempotence: forcing the forced matrix changes nothing (up to the
        // round-off of re-decomposing it — tiny negative eigenvalues of order
        // machine-epsilon may reappear and be re-clipped).
        let f2 = force_positive_semidefinite(&f.forced).unwrap();
        prop_assert!(f2.forced.approx_eq(&f.forced, 1e-8));
        prop_assert!(f2.was_positive_semidefinite);
        prop_assert!(f2.frobenius_gap < 1e-10 * f.forced.frobenius_norm().max(1.0));
    }

    /// The eigen coloring realizes exactly the forced covariance for any
    /// Hermitian target, PSD or not.
    #[test]
    fn coloring_realizes_the_forced_covariance(k in correlation_like_matrix(7)) {
        let c = eigen_coloring(&k).unwrap();
        prop_assert!(c.realized_covariance().approx_eq(&c.psd.forced, 1e-8));
    }

    /// For PSD targets the coloring realizes the target itself and Cholesky
    /// (when it succeeds) realizes the same matrix.
    #[test]
    fn coloring_matches_cholesky_on_psd_targets(k in psd_matrix(6)) {
        let c = eigen_coloring(&k).unwrap();
        prop_assert!(c.realized_covariance().approx_eq(&k, 1e-7 * k.frobenius_norm().max(1.0)));
        if let Ok(l) = corrfade_linalg::cholesky(&k) {
            prop_assert!(l.aat_adjoint().approx_eq(&c.realized_covariance(), 1e-7 * k.frobenius_norm().max(1.0)));
        }
    }

    /// Generated samples always have the right dimension, finite values and
    /// non-negative envelopes, and the generator is deterministic per seed.
    #[test]
    fn generator_output_is_well_formed(k in correlation_like_matrix(6), seed in 0u64..1000) {
        let mut a = CorrelatedRayleighGenerator::new(k.clone(), seed).unwrap();
        let mut b = CorrelatedRayleighGenerator::new(k.clone(), seed).unwrap();
        for _ in 0..16 {
            let sa = a.sample();
            let sb = b.sample();
            prop_assert_eq!(sa.gaussian.len(), k.rows());
            prop_assert!(sa.gaussian.iter().all(|z| z.is_finite()));
            prop_assert!(sa.envelopes.iter().all(|&r| r.is_finite() && r >= 0.0));
            prop_assert_eq!(sa, sb);
        }
    }

    /// Eq. (11)/(15) power conversions are mutually inverse for any
    /// non-negative power.
    #[test]
    fn power_conversion_round_trip(sigma_r_sq in 0.0f64..1e6) {
        let sigma_g_sq = corrfade_stats::gaussian_variance_from_envelope_variance(sigma_r_sq);
        let back = corrfade_stats::envelope_variance(sigma_g_sq);
        prop_assert!((back - sigma_r_sq).abs() <= 1e-9 * sigma_r_sq.max(1.0));
        prop_assert!(sigma_g_sq >= sigma_r_sq);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The FFT round-trips and satisfies Parseval for arbitrary signals of
    /// arbitrary (not necessarily power-of-two) length.
    #[test]
    fn fft_round_trip_and_parseval(
        re in proptest::collection::vec(-100.0f64..100.0, 2..130),
    ) {
        let x: Vec<_> = re.iter().enumerate().map(|(i, &r)| c64(r, (i as f64 * 0.37).sin())).collect();
        let spec = corrfade_dsp::fft(&x);
        let back = corrfade_dsp::ifft(&spec);
        let max_err = x.iter().zip(back.iter()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        prop_assert!(max_err < 1e-7, "round trip error {max_err}");
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((te - fe).abs() < 1e-6 * te.max(1.0));
    }

    /// Doppler filters always produce a positive output variance that scales
    /// linearly with the input variance, and a normalized autocorrelation
    /// that starts at 1.
    #[test]
    fn doppler_filter_invariants(
        log2_m in 8u32..12,
        fm in 0.01f64..0.2,
        sigma in 0.05f64..4.0,
    ) {
        let m = 1usize << log2_m;
        let filter = corrfade_dsp::DopplerFilter::new(m, fm).unwrap();
        let v1 = filter.output_variance(sigma);
        let v2 = filter.output_variance(2.0 * sigma);
        prop_assert!(v1 > 0.0);
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-12 * v2);
        let rho = filter.normalized_autocorrelation(8);
        prop_assert!((rho[0] - 1.0).abs() < 1e-9);
        prop_assert!(rho.iter().all(|r| r.abs() <= 1.0 + 1e-9));
    }
}

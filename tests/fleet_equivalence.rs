//! Fleet-equivalence regression tests: every stream of a [`StreamFleet`]
//! must be **bit-identical** to running that scenario alone with the same
//! per-stream seed — regardless of how many streams share the fleet, which
//! pool executes it (global, explicit, or none at all), how many workers
//! that pool has, and which kernel backend is active (the CI thread-matrix
//! leg runs this file under `CORRFADE_KERNEL=scalar|vector` ×
//! `CORRFADE_POOL_THREADS=2|max`).
//!
//! Also pins the decomposition-cache sharing the fleet is built on: streams
//! over the same covariance matrix must hit the cache, and the cached path
//! must not change any generated value.

use corrfade::{ChannelStream, SampleBlock};
use corrfade_parallel::{stream_seed, Runtime, StreamFleet};
use corrfade_scenarios::lookup;

/// Concatenates `advances` blocks of fleet stream `i` generated standalone:
/// the reference every fleet result is compared against.
fn standalone_blocks(name: &str, master_seed: u64, index: usize, advances: usize) -> Vec<Vec<u8>> {
    let mut gen = lookup(name)
        .unwrap()
        .build_realtime(stream_seed(master_seed, index))
        .unwrap();
    let mut block = SampleBlock::empty();
    (0..advances)
        .map(|_| {
            gen.next_block_into(&mut block).unwrap();
            block
                .as_slice()
                .iter()
                .flat_map(|z| {
                    z.re.to_bits()
                        .to_le_bytes()
                        .into_iter()
                        .chain(z.im.to_bits().to_le_bytes())
                })
                .collect()
        })
        .collect()
}

fn fleet_blocks(fleet: &mut StreamFleet, i: usize) -> Vec<u8> {
    fleet
        .block(i)
        .as_slice()
        .iter()
        .flat_map(|z| {
            z.re.to_bits()
                .to_le_bytes()
                .into_iter()
                .chain(z.im.to_bits().to_le_bytes())
        })
        .collect()
}

#[test]
// `round` is not a mere slice index: each iteration advances the fleet once
// before comparing against that round's reference blocks.
#[allow(clippy::needless_range_loop)]
fn all_sixteen_registered_scenarios_run_concurrently_and_bit_identically() {
    // The acceptance-criterion configuration: every registered scenario as
    // one fleet, generated concurrently on the pool, each stream compared
    // bit for bit against running it alone.
    const MASTER_SEED: u64 = 0xF1EE7;
    const ADVANCES: usize = 2;
    let names = corrfade_scenarios::names();
    assert_eq!(names.len(), 16, "the registry holds 16 named scenarios");

    let references: Vec<Vec<Vec<u8>>> = names
        .iter()
        .enumerate()
        .map(|(i, name)| standalone_blocks(name, MASTER_SEED, i, ADVANCES))
        .collect();

    let mut fleet = StreamFleet::open(&names, MASTER_SEED).unwrap();
    assert_eq!(fleet.len(), 16);
    for round in 0..ADVANCES {
        fleet.advance().unwrap();
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                fleet_blocks(&mut fleet, i),
                references[i][round],
                "stream {i} (`{name}`) diverged from standalone generation \
                 in advance {round}"
            );
        }
    }
}

#[test]
fn pool_choice_cannot_influence_the_blocks() {
    // Global pool, explicit pools of several sizes, and the sequential
    // fallback must produce byte-identical blocks for every stream.
    const MASTER_SEED: u64 = 42;
    let names = ["fig4a-spectral", "fig4b-spatial", "scaling-exp-rho07"];

    let mut on_global = StreamFleet::open(&names, MASTER_SEED).unwrap();
    on_global.advance().unwrap();

    let mut sequential = StreamFleet::open(&names, MASTER_SEED).unwrap();
    sequential.advance_sequential().unwrap();

    for workers in [1usize, 2, 5] {
        let rt = Runtime::new(workers);
        let mut on_pool = StreamFleet::open(&names, MASTER_SEED).unwrap();
        on_pool.advance_on(&rt).unwrap();
        for i in 0..names.len() {
            assert_eq!(
                fleet_blocks(&mut on_pool, i),
                fleet_blocks(&mut on_global, i),
                "stream {i}: {workers}-worker pool diverged from the global pool"
            );
            assert_eq!(
                fleet_blocks(&mut on_pool, i),
                fleet_blocks(&mut sequential, i),
                "stream {i}: pooled generation diverged from sequential"
            );
        }
    }
}

#[test]
fn precision_tier_is_fleet_invariant() {
    // The CI precision matrix re-runs this binary under
    // CORRFADE_TEST_PRECISION=f32: a fleet of tier-overridden scenarios must
    // stay bit-identical to standalone streams of the same tier (both sides
    // share precision + backend + RNG stream, so the comparison is exact in
    // either tier).
    use corrfade::Precision;

    const MASTER_SEED: u64 = 0x9A7E;
    let precision = Precision::from_test_env();
    let names = ["fig4a-spectral", "two-envelope-complex"];
    let scenarios: Vec<&'static corrfade_scenarios::Scenario> = names
        .iter()
        .map(|name| &*Box::leak(Box::new(lookup(name).unwrap().with_precision(precision))))
        .collect();

    let mut fleet = StreamFleet::open_scenarios(&scenarios, MASTER_SEED).unwrap();
    let mut block = SampleBlock::empty();
    for round in 0..2 {
        fleet.advance().unwrap();
        for (i, scenario) in scenarios.iter().enumerate() {
            let mut standalone = scenario
                .build_realtime(stream_seed(MASTER_SEED, i))
                .unwrap();
            for _ in 0..=round {
                standalone.next_block_into(&mut block).unwrap();
            }
            assert_eq!(
                fleet.block(i).as_slice(),
                block.as_slice(),
                "stream {i} ({precision}) diverged from standalone generation \
                 in advance {round}"
            );
        }
    }
}

#[test]
fn shared_covariance_specs_hit_the_decomposition_cache() {
    // Two streams of the same scenario share one decomposition: opening the
    // duplicate must be answered from the cache. The counters are
    // process-wide and monotone, so only lower bounds on deltas are
    // asserted (other tests in this binary may add their own hits).
    let before = corrfade::coloring_cache_stats();
    let mut fleet = StreamFleet::open(&["mimo-ula-halfwave", "mimo-ula-halfwave"], 5).unwrap();
    let after = corrfade::coloring_cache_stats();
    assert!(
        after.hits > before.hits,
        "the duplicate scenario must share the cached decomposition \
         (hits {} -> {})",
        before.hits,
        after.hits
    );

    // And the shared decomposition still yields independent, correct
    // streams.
    fleet.advance().unwrap();
    let a = fleet_blocks(&mut fleet, 0);
    let b = fleet_blocks(&mut fleet, 1);
    assert_ne!(a, b, "cache sharing must not alias the RNG streams");
    assert_eq!(
        a,
        standalone_blocks("mimo-ula-halfwave", 5, 0, 1).remove(0),
        "cached decomposition changed the generated values"
    );
}

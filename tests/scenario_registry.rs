//! Integration tests of the declarative scenario registry: every registered
//! scenario must bridge into working generators in both operating modes,
//! names must be unique and stable, and unknown names must surface as typed
//! errors — the contract the experiment binaries, benches and examples rely
//! on when they resolve configuration with `corrfade_scenarios::lookup`.

use corrfade_scenarios::{iter, lookup, names, PowerProfile, ScenarioError, REGISTRY};
use corrfade_stats::{relative_frobenius_error, sample_covariance};

#[test]
fn every_scenario_builds_in_single_instant_mode() {
    for scenario in iter() {
        let gen = scenario.to_builder().seed(1).build();
        assert!(
            gen.is_ok(),
            "scenario `{}` failed to build: {gen:?}",
            scenario.name
        );
        assert_eq!(gen.unwrap().dimension(), scenario.envelopes);
    }
}

#[test]
fn every_scenario_builds_in_realtime_mode_and_produces_blocks() {
    for scenario in iter() {
        let mut gen = scenario
            .build_realtime(2)
            .unwrap_or_else(|e| panic!("scenario `{}` real-time build failed: {e}", scenario.name));
        let block = gen.generate_block();
        assert_eq!(block.envelope_paths.len(), scenario.envelopes);
        assert_eq!(block.envelope_paths[0].len(), scenario.doppler.idft_size);
    }
}

#[test]
fn scenario_names_are_unique() {
    let names = names();
    let mut deduped = names.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), names.len(), "duplicate names in {names:?}");
    assert_eq!(names.len(), REGISTRY.len());
}

#[test]
fn unknown_name_is_a_typed_error() {
    let err = lookup("not-a-scenario").unwrap_err();
    assert!(matches!(err, ScenarioError::UnknownScenario { .. }));
    // The error is a std::error::Error with a useful message.
    let msg = err.to_string();
    assert!(msg.contains("not-a-scenario"), "message: {msg}");
}

#[test]
fn power_profiles_have_matching_dimensions() {
    for scenario in iter() {
        match scenario.powers {
            PowerProfile::Intrinsic => {}
            PowerProfile::Gaussian(p) | PowerProfile::Envelope(p) => assert_eq!(
                p.len(),
                scenario.envelopes,
                "scenario `{}` power profile length mismatch",
                scenario.name
            ),
        }
    }
}

#[test]
fn network_family_resolves_builds_and_streams_by_name() {
    use corrfade::{ChannelStream, SampleBlock};

    // The generated WSN family is addressable exactly like a catalogued
    // scenario: the full 24-link grid field...
    let field = lookup("network/grid16").unwrap();
    assert_eq!(field.envelopes, 24);
    let gen = field.build_realtime(3).unwrap();
    assert_eq!(gen.dimension(), 24);
    assert_eq!(gen.block_len(), field.doppler.idft_size);

    // ...and any single link of it, streamable through the zero-allocation
    // block API (what corrfade-serve subscriptions use).
    let mut block = SampleBlock::empty();
    let mut stream = lookup("network/grid16/link5").unwrap().stream(3).unwrap();
    stream.next_block_into(&mut block).unwrap();
    assert_eq!(block.envelopes(), 1);
    assert_eq!(block.samples(), 1024);

    // Repeated lookups hit the cache: same 'static scenario.
    assert!(std::ptr::eq(
        lookup("network/grid16").unwrap(),
        lookup("network/grid16").unwrap()
    ));
}

#[test]
fn unknown_network_names_are_typed_errors() {
    for bad in ["network/grid16/link24", "network/grid32", "network/"] {
        let err = lookup(bad).unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownScenario { .. }),
            "`{bad}` should be UnknownScenario, got {err:?}"
        );
    }
}

#[test]
fn generated_snapshots_realize_each_psd_scenario_covariance() {
    // For every scenario whose target is realizable (no eigenvalue
    // clipping), the sample covariance must converge to the desired one.
    for scenario in iter() {
        let mut gen = scenario.build(0x5EED).unwrap();
        if gen.coloring().psd.clipped_count > 0 {
            continue; // infeasible targets realize the *forced* matrix instead
        }
        let k = scenario.covariance_matrix().unwrap();
        let khat = sample_covariance(&gen.generate_snapshots(20_000));
        let err = relative_frobenius_error(&khat, &k);
        assert!(
            err < 0.1,
            "scenario `{}`: sample covariance off by {err:.3}",
            scenario.name
        );
    }
}

//! Streaming-equivalence regression tests: the zero-allocation
//! `ChannelStream` path must be **bit-identical** to the legacy wrapper APIs
//! for equal seeds — on both paper covariance matrices (Eq. 22 spectral,
//! Eq. 23 spatial), in both generation modes, and through the parallel
//! engine at every thread count.

use corrfade::{
    ChannelStream, CorrelatedRayleighGenerator, RealtimeConfig, RealtimeGenerator, SampleBlock,
};
use corrfade_models::{paper_covariance_matrix_22, paper_covariance_matrix_23};

fn paper_matrices() -> [(&'static str, corrfade_linalg::CMatrix); 2] {
    [
        ("Eq. 22 spectral", paper_covariance_matrix_22()),
        ("Eq. 23 spatial", paper_covariance_matrix_23()),
    ]
}

fn realtime_config(k: corrfade_linalg::CMatrix, seed: u64) -> RealtimeConfig {
    RealtimeConfig {
        covariance: k,
        idft_size: 512,
        normalized_doppler: 0.05,
        sigma_orig_sq: 0.5,
        seed,
        // Both sides of every comparison share the tier, so the CI precision
        // matrix (CORRFADE_TEST_PRECISION=f32) keeps these suites bit-exact.
        precision: corrfade::Precision::from_test_env(),
    }
}

#[test]
fn realtime_streaming_matches_generate_blocks_bit_for_bit() {
    const BLOCKS: usize = 5;
    for (label, k) in paper_matrices() {
        let mut legacy = RealtimeGenerator::new(realtime_config(k.clone(), 0xBEEF)).unwrap();
        let mut streaming = RealtimeGenerator::new(realtime_config(k, 0xBEEF)).unwrap();
        let reference = legacy.generate_blocks(BLOCKS);

        let mut block = SampleBlock::empty();
        let mut offset = 0usize;
        for _ in 0..BLOCKS {
            streaming.next_block_into(&mut block).unwrap();
            let m = block.samples();
            for j in 0..block.envelopes() {
                assert_eq!(
                    &reference.gaussian_paths[j][offset..offset + m],
                    block.path(j),
                    "{label}: gaussian path {j} diverged at block offset {offset}"
                );
                assert_eq!(
                    &reference.envelope_paths[j][offset..offset + m],
                    block.envelope_path(j),
                    "{label}: envelope path {j} diverged at block offset {offset}"
                );
            }
            offset += m;
        }
        assert_eq!(offset, reference.samples());
    }
}

#[test]
fn single_instant_streaming_matches_generate_snapshots_bit_for_bit() {
    const BATCH: usize = 100;
    const BLOCKS: usize = 4;
    for (label, k) in paper_matrices() {
        let mut legacy = CorrelatedRayleighGenerator::new(k.clone(), 0xCAFE).unwrap();
        let mut streaming = CorrelatedRayleighGenerator::new(k, 0xCAFE)
            .unwrap()
            .with_stream_block_len(BATCH);
        let reference = legacy.generate_snapshots(BATCH * BLOCKS);

        let mut block = SampleBlock::empty();
        for b in 0..BLOCKS {
            streaming.next_block_into(&mut block).unwrap();
            for l in 0..BATCH {
                for (j, &z) in reference[b * BATCH + l].iter().enumerate() {
                    assert_eq!(
                        block.path(j)[l],
                        z,
                        "{label}: snapshot {} envelope {j} diverged",
                        b * BATCH + l
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_engine_is_thread_count_invariant_through_streaming() {
    use corrfade_parallel::ParallelConfig;
    for (label, k) in paper_matrices() {
        // Snapshot ensembles: bit-identical for every worker count, and
        // bit-identical to a sequential generator streaming the same chunk
        // seeds.
        let cfg = |threads| ParallelConfig {
            threads,
            chunk_size: 256,
            seed: 77,
        };
        let one = corrfade_parallel::generate_snapshots(&k, 1000, &cfg(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let many = corrfade_parallel::generate_snapshots(&k, 1000, &cfg(threads)).unwrap();
            assert_eq!(
                one, many,
                "{label}: ensemble changed with {threads} threads"
            );
        }
        // Chunk 0 covers the first `effective_chunk_size` samples (the
        // configured chunk_size bounded by the load-balancing heuristic).
        let chunk0 = cfg(1).effective_chunk_size(1000);
        let mut sequential =
            CorrelatedRayleighGenerator::new(k.clone(), corrfade_parallel::chunk_seed(77, 0))
                .unwrap();
        assert_eq!(
            &one[..chunk0],
            &sequential.generate_snapshots(chunk0)[..],
            "{label}: parallel chunk 0 diverged from the sequential generator"
        );

        // Realtime block paths: bit-identical for every worker count.
        let base = realtime_config(k, 5);
        let a = corrfade_parallel::generate_realtime_paths(&base, 4, &cfg(1)).unwrap();
        for threads in [2usize, 4] {
            let b = corrfade_parallel::generate_realtime_paths(&base, 4, &cfg(threads)).unwrap();
            assert_eq!(
                a, b,
                "{label}: realtime paths changed with {threads} threads"
            );
        }
    }
}

#[test]
fn streamed_covariance_estimates_agree_between_engines() {
    use corrfade_parallel::ParallelConfig;
    for (label, k) in paper_matrices() {
        let cfg = ParallelConfig {
            threads: 3,
            chunk_size: 512,
            seed: 3,
        };
        let snaps = corrfade_parallel::generate_snapshots(&k, 4096, &cfg).unwrap();
        let materialized = corrfade_stats::sample_covariance(&snaps);
        let streamed = corrfade_parallel::monte_carlo_covariance(&k, 4096, &cfg).unwrap();
        assert!(
            materialized.approx_eq(&streamed, 1e-10),
            "{label}: streaming covariance fold diverged from the materialized estimate"
        );
    }
}

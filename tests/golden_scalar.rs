//! Golden-output regression test for the scalar kernel backend.
//!
//! `CORRFADE_KERNEL=scalar` promises **bit-exact** reproduction of the
//! output every release before the kernel-dispatch layer produced — the
//! scalar backend is the reference the vectorized backends are validated
//! against, and downstream users rely on it for reproducible experiment
//! reruns. This test pins that promise to hard-coded `f64::to_bits`
//! patterns captured from the pre-kernel implementation (PR 3), for both
//! generation modes and the raw RNG stream.
//!
//! The whole file is a single `#[test]` in its own integration-test binary:
//! the environment override must be installed before the process-wide
//! backend latch is first read, and no other test may race that write.

use corrfade::{ChannelStream, CorrelatedRayleighGenerator, RealtimeConfig, RealtimeGenerator};
use corrfade_linalg::{Backend, SampleBlock};
use corrfade_models::paper_covariance_matrix_22;
use rand::RngCore;

/// `(envelope j, sample l, re bits, im bits)` golden samples.
type Golden = (usize, usize, u64, u64);

/// First realtime block: Eq. 22 covariance, `M = 512`, `f_m = 0.05`,
/// `σ²_orig = 0.5`, seed `0xBEEF` (the `streaming_equivalence` config).
const REALTIME_BLOCK1: [Golden; 12] = [
    (0, 0, 0xbff09bb6f6a61601, 0xbff7d53e8bbb999c),
    (0, 1, 0xbff1b2c17b5958a9, 0xbff672c99253c08a),
    (0, 255, 0x3fc16ce3dc2e04f4, 0x3ff127bb1b76f3fe),
    (0, 511, 0xbfee8cda7d8cc7ad, 0xbff7d32b02929810),
    (1, 0, 0xbffc4c8181d891eb, 0x3fcfe6dd62e6285f),
    (1, 1, 0xbffcc61aeaa66c64, 0x3fd9fc8b78da9017),
    (1, 255, 0x3fe77a450ecbfbbf, 0x4001cbffe129db88),
    (1, 511, 0xbffa830264c042ae, 0x3fb791fdfee968c7),
    (2, 0, 0x3fc9a2adaf4035fa, 0x3fd00db837108501),
    (2, 1, 0x3fcbc644e22e9ef9, 0x3fcc6e7577c51190),
    (2, 255, 0xbfc38e0c5e63d039, 0x3fdbad918140596e),
    (2, 511, 0x3fc2d7724bb0fffc, 0x3fd163c136bd5cb8),
];

/// First sample of the second realtime block (same generator, RNG advanced).
const REALTIME_BLOCK2_J0_L0: (u64, u64) = (0x3ff392e39c9cef44, 0xbfd986c27ab9d11c);

/// Single-instant stream: Eq. 22 covariance, seed `0xCAFE`, block length 8.
const SINGLE_INSTANT: [Golden; 6] = [
    (0, 0, 0xbfdef84bdb703d1c, 0x3fe2fdc2d0b3f6c2),
    (0, 7, 0x3ff25bdf92161213, 0xbfe098ce50c1ae70),
    (1, 0, 0x3fc8ccee6b662cab, 0x3fed55fd18c8c47d),
    (1, 7, 0x3fda1e026ab725a1, 0x3fa9a36a4a7148af),
    (2, 0, 0x3fe9b6d4c28fd971, 0x3fd76eb629bb7a13),
    (2, 7, 0x3fe539016a4fc6d5, 0x3fd0c25d79d789d0),
];

/// First 8 `u32` words of `RandomStream::new(3)` — pins the vendored RNG
/// stack underneath everything else.
const RNG_STREAM3: [u32; 8] = [
    0x2eca9bdb, 0x6382d88d, 0x8ea1257a, 0xd49c1ff8, 0x3e401684, 0x94f0a612, 0xbf5a3d51, 0x2dbe91ce,
];

fn assert_bits(block: &SampleBlock, golden: &[Golden], label: &str) {
    for &(j, l, re_bits, im_bits) in golden {
        let z = block.path(j)[l];
        assert_eq!(
            (z.re.to_bits(), z.im.to_bits()),
            (re_bits, im_bits),
            "{label}: envelope {j}, sample {l} diverged from the pre-kernel \
             golden output: got {}{:+}i",
            z.re,
            z.im
        );
    }
}

#[test]
fn scalar_backend_reproduces_pre_kernel_golden_outputs() {
    // Must happen before anything queries the backend latch; this file is
    // its own process and holds exactly one test, so nothing races it.
    std::env::set_var("CORRFADE_KERNEL", "scalar");
    assert_eq!(corrfade_linalg::kernel::backend(), Backend::Scalar);

    // RNG substrate.
    let mut rng = corrfade_randn::RandomStream::new(3);
    for (i, &expected) in RNG_STREAM3.iter().enumerate() {
        assert_eq!(rng.next_u32(), expected, "RNG word {i} diverged");
    }

    // Realtime (Doppler) generation: coloring matvec + in-place IDFT.
    let cfg = RealtimeConfig {
        covariance: paper_covariance_matrix_22(),
        idft_size: 512,
        normalized_doppler: 0.05,
        sigma_orig_sq: 0.5,
        seed: 0xBEEF,
        // Golden constants are the f64 reference tier by definition.
        precision: corrfade::Precision::F64,
    };
    let mut rt = RealtimeGenerator::new(cfg).unwrap();
    let mut block = SampleBlock::empty();
    rt.next_block_into(&mut block).unwrap();
    assert_bits(&block, &REALTIME_BLOCK1, "realtime block 1");
    rt.next_block_into(&mut block).unwrap();
    let z = block.path(0)[0];
    assert_eq!(
        (z.re.to_bits(), z.im.to_bits()),
        REALTIME_BLOCK2_J0_L0,
        "realtime block 2 diverged"
    );

    // Single-instant streaming: per-snapshot matvec path.
    let mut si = CorrelatedRayleighGenerator::new(paper_covariance_matrix_22(), 0xCAFE)
        .unwrap()
        .with_stream_block_len(8);
    si.next_block_into(&mut block).unwrap();
    assert_bits(&block, &SINGLE_INSTANT, "single-instant block");

    // The process-wide decomposition cache: a generator assembled from the
    // cached coloring must reproduce the identical golden bits (the cache
    // key is the exact bit pattern of the covariance matrix, so a hit
    // returns exactly what the uncached decomposition produced), and the
    // second lookup must be answered from the cache.
    let k = paper_covariance_matrix_22();
    let before = corrfade::coloring_cache_stats();
    let first = corrfade::cached_eigen_coloring(&k).unwrap();
    let second = corrfade::cached_eigen_coloring(&k).unwrap();
    let after = corrfade::coloring_cache_stats();
    assert!(
        after.misses > before.misses && after.hits > before.hits,
        "second lookup of the same covariance must hit the cache \
         (stats {before:?} -> {after:?})"
    );
    assert_eq!(
        first.matrix.as_slice(),
        second.matrix.as_slice(),
        "cache hit returned a different coloring"
    );
    let cfg_cached = RealtimeConfig {
        covariance: k,
        idft_size: 512,
        normalized_doppler: 0.05,
        sigma_orig_sq: 0.5,
        seed: 0xBEEF,
        // Golden constants are the f64 reference tier by definition.
        precision: corrfade::Precision::F64,
    };
    let mut rt_cached =
        RealtimeGenerator::from_coloring(corrfade::Coloring::clone(&second), cfg_cached).unwrap();
    rt_cached.next_block_into(&mut block).unwrap();
    assert_bits(&block, &REALTIME_BLOCK1, "cached-coloring realtime block 1");
}

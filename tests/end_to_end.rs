//! End-to-end integration tests spanning every crate of the workspace:
//! physical parameters → correlation model → covariance matrix → coloring →
//! generation → statistical validation.

use corrfade::{CorrelatedRayleighGenerator, GeneratorBuilder, RealtimeConfig, RealtimeGenerator};
use corrfade_linalg::{c64, CMatrix};
use corrfade_models::{
    paper_covariance_matrix_22, paper_covariance_matrix_23, paper_spatial_scenario,
    paper_spectral_scenario, ChannelParams,
};
use corrfade_stats::{
    ks_test, relative_frobenius_error, sample_covariance, sample_covariance_from_paths,
};

/// The full paper pipeline for the spectral (OFDM) experiment: physical
/// parameters produce Eq. (22); the generator realizes it; the envelopes are
/// Rayleigh with the Eq. (14)/(15) moments.
#[test]
fn spectral_experiment_end_to_end() {
    let params = ChannelParams::paper_defaults();
    assert!((params.max_doppler_hz() - 50.0).abs() < 0.1);

    let (model, freqs, delays) = paper_spectral_scenario();
    let k = model.covariance_matrix(&freqs, &delays).unwrap();
    assert!(k.max_abs_diff(&paper_covariance_matrix_22()) < 5e-4);

    let mut gen = CorrelatedRayleighGenerator::new(k.clone(), 0xE2E).unwrap();
    let snaps = gen.generate_snapshots(80_000);
    let khat = sample_covariance(&snaps);
    assert!(relative_frobenius_error(&khat, &k) < 0.03);

    let mut gen = CorrelatedRayleighGenerator::new(k, 0xE2E1).unwrap();
    let paths = gen.generate_envelope_paths(80_000);
    for path in &paths {
        let moments = corrfade_stats::check_envelope_moments(path, 1.0);
        assert!(moments.max_relative_error() < 0.05, "{moments:?}");
        let sigma = corrfade_stats::rayleigh_scale(1.0);
        let t = ks_test(path, |r| corrfade_specfun::rayleigh_cdf(r, sigma));
        assert!(t.passes(0.001), "{t:?}");
    }
}

/// The full paper pipeline for the spatial (MIMO) experiment through the
/// builder API and the real-time generator.
#[test]
fn spatial_experiment_end_to_end_realtime() {
    let k = paper_spatial_scenario().covariance_matrix(3).unwrap();
    assert!(k.max_abs_diff(&paper_covariance_matrix_23()) < 5e-4);

    let mut gen = GeneratorBuilder::new()
        .spatial_scenario(paper_spatial_scenario(), 3)
        .seed(0xE2E2)
        .build_realtime(1024, 0.05, 0.5)
        .unwrap();
    let block = gen.generate_blocks(30);
    let khat = sample_covariance_from_paths(&block.gaussian_paths);
    assert!(relative_frobenius_error(&khat, &k) < 0.08);

    // Each envelope keeps the Doppler autocorrelation after coloring.
    let target = gen.filter().normalized_autocorrelation(30);
    for path in &block.gaussian_paths {
        let rho = corrfade_stats::normalized_autocorrelation(&path[..4096], 30);
        for d in 0..=30 {
            assert!((rho[d] - target[d]).abs() < 0.25, "lag {d}");
        }
    }
}

/// The proposed algorithm and every applicable baseline agree on an easy
/// scenario; only the proposed algorithm covers the hard ones.
#[test]
fn proposed_covers_scenarios_baselines_cannot() {
    use corrfade_baselines::BaselineMethod;

    // Hard scenario: unequal powers AND complex covariances AND not PSD.
    let hard = CMatrix::from_rows(&[
        vec![c64(2.0, 0.0), c64(1.4, 0.2), c64(-1.3, 0.0)],
        vec![c64(1.4, -0.2), c64(1.0, 0.0), c64(0.9, 0.1)],
        vec![c64(-1.3, 0.0), c64(0.9, -0.1), c64(1.0, 0.0)],
    ]);
    for method in BaselineMethod::ALL {
        assert!(
            method.try_generate(&hard, 1).is_err(),
            "{} unexpectedly handled the hard scenario",
            method.name()
        );
    }
    let mut gen = CorrelatedRayleighGenerator::new(hard.clone(), 0xE2E3).unwrap();
    let forced = gen.realized_covariance();
    let khat = sample_covariance(&gen.generate_snapshots(60_000));
    assert!(relative_frobenius_error(&khat, &forced) < 0.04);
}

/// The parallel engine reproduces the sequential generator's statistics.
#[test]
fn parallel_engine_matches_sequential_statistics() {
    let k = paper_covariance_matrix_22();
    let cfg = corrfade_parallel::ParallelConfig {
        threads: 4,
        chunk_size: 4096,
        seed: 0xE2E4,
    };
    let khat = corrfade_parallel::monte_carlo_covariance(&k, 100_000, &cfg).unwrap();
    assert!(relative_frobenius_error(&khat, &k) < 0.03);
}

/// Real-time generation through the flawed ref.-[6] combination misses the
/// covariance by the Doppler variance factor, while the proposed combination
/// hits it — the paper's central comparative claim.
#[test]
fn variance_aware_combination_beats_the_flawed_one() {
    let k = paper_covariance_matrix_22();

    let mut proposed = RealtimeGenerator::new(RealtimeConfig {
        covariance: k.clone(),
        idft_size: 1024,
        normalized_doppler: 0.05,
        sigma_orig_sq: 0.5,
        seed: 0xE2E5,
        precision: corrfade::Precision::F64,
    })
    .unwrap();
    let block = proposed.generate_blocks(20);
    let err_proposed =
        relative_frobenius_error(&sample_covariance_from_paths(&block.gaussian_paths), &k);

    let mut flawed =
        corrfade_baselines::SorooshyariDautRealtimeGenerator::new(&k, 1024, 0.05, 0.5, 0xE2E5)
            .unwrap();
    let mut paths: Vec<Vec<corrfade_linalg::Complex64>> = vec![Vec::new(); 3];
    for _ in 0..20 {
        let b = flawed.generate_block();
        for j in 0..3 {
            paths[j].extend_from_slice(&b[j]);
        }
    }
    let err_flawed = relative_frobenius_error(&sample_covariance_from_paths(&paths), &k);

    assert!(
        err_flawed > 4.0 * err_proposed,
        "flawed combination error {err_flawed} should dwarf the proposed one {err_proposed}"
    );
}

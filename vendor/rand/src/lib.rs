//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this workspace has no network access to a crates
//! registry, so the small API subset the workspace actually consumes is
//! re-implemented here, signature-compatible with `rand` 0.8:
//!
//! * [`RngCore`] / [`SeedableRng`] / the blanket [`Rng`] extension trait,
//! * `Rng::gen::<T>()` for the primitive types the workspace samples,
//! * [`rngs::StdRng`] — a deterministic, seedable generator (xoshiro256++,
//!   seeded via SplitMix64; *not* bit-compatible with upstream `StdRng`,
//!   which no test in this workspace relies on),
//! * the [`Error`] type used by `RngCore::try_fill_bytes`.
//!
//! If the real `rand` crate ever becomes available, deleting `vendor/rand`
//! and pointing the workspace dependency at the registry is a drop-in swap.

#![warn(missing_docs)]

use core::fmt;

/// Error type reported by [`RngCore::try_fill_bytes`].
///
/// The in-tree generators are infallible, so this error is never produced;
/// it exists for signature compatibility with `rand` 0.8.
#[derive(Debug)]
pub struct Error {
    _private: (),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);

    /// Fills `dest` with random bytes, reporting failure as an [`Error`].
    ///
    /// The in-tree generators never fail, so the default implementation
    /// simply delegates to [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same construction `rand` 0.8 uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from raw random bits — the stand-in
/// for `rand`'s `Standard` distribution.
pub trait SampleStandard {
    /// Draws one uniformly-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Extension methods on any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value of type `T` from the standard uniform distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one `f64` uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * self.gen::<f64>()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used to expand small seeds into full generator states.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(state: u64) -> Self {
        Self { state }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic default generator — xoshiro256++.
    ///
    /// Upstream `rand 0.8` implements `StdRng` as ChaCha12; the statistical
    /// and reproducibility properties the workspace tests rely on (identical
    /// seed → identical stream, excellent equidistribution) hold for
    /// xoshiro256++ as well, with much less code.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
        buffered: Option<u32>,
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s, buffered: None }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if let Some(hi) = self.buffered.take() {
                return hi;
            }
            let v = self.next_raw();
            self.buffered = Some((v >> 32) as u32);
            v as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.buffered = None;
            self.next_raw()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        rng.try_fill_bytes(&mut buf).unwrap();
    }
}

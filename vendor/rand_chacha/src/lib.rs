//! Offline stand-in for the
//! [`rand_chacha`](https://crates.io/crates/rand_chacha) crate.
//!
//! Implements a genuine ChaCha20 keystream generator (the 20-round ChaCha
//! core of RFC 8439) behind the same API surface the workspace uses from
//! `rand_chacha` 0.3: [`ChaCha20Rng::from_seed`] (32-byte key),
//! [`ChaCha20Rng::set_stream`] (64-bit stream id) and the
//! [`rand::RngCore`] sampling interface.
//!
//! Like upstream, the counter layout is a 64-bit block counter (state words
//! 12–13) plus a 64-bit stream id (state words 14–15), so distinct stream
//! ids select provably non-overlapping keystreams of 2⁷⁰ bytes each — the
//! property `corrfade-randn`'s splittable substreams are built on. The
//! exact word ordering of the output buffer is not guaranteed to be
//! bit-identical with upstream `rand_chacha` (nothing in this workspace
//! depends on cross-crate bit equality, only on determinism and stream
//! independence).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 20;
/// Words produced per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// A ChaCha20 random number generator with a 64-bit stream id.
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// 64-bit stream id (state words 14..16).
    stream: u64,
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word index in `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20Rng {
    /// The RFC 8439 constants `"expand 32-byte k"`.
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    /// Selects the 64-bit stream id and rewinds the generator to the start
    /// of that stream.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = BLOCK_WORDS;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Computes one 16-word keystream block for the current counter.
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&Self::CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(b);
        }
        Self {
            key,
            counter: 0,
            stream: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical all-zero ChaCha20 test vector (zero key, zero nonce,
    /// counter 0): the keystream begins `76 b8 e0 ad a0 f1 3d 90 40 5d 6a
    /// e5 53 86 bd 28 ...`, i.e. little-endian words `0xade0b876,
    /// 0x903df1a0, 0xe56a5d40, 0x28bd8653`. With stream id 0 our state
    /// layout coincides with the RFC layout, so the block function can be
    /// checked bit-for-bit.
    #[test]
    fn chacha_block_function_matches_reference_keystream() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let expected_first: [u32; 4] = [0xade0_b876, 0x903d_f1a0, 0xe56a_5d40, 0x28bd_8653];
        for &e in &expected_first {
            assert_eq!(rng.next_u32(), e);
        }
    }

    #[test]
    fn same_seed_same_stream_reproduces() {
        let seed = [7u8; 32];
        let mut a = ChaCha20Rng::from_seed(seed);
        let mut b = ChaCha20Rng::from_seed(seed);
        for _ in 0..128 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_do_not_collide() {
        let seed = [3u8; 32];
        let mut a = ChaCha20Rng::from_seed(seed);
        let mut b = ChaCha20Rng::from_seed(seed);
        a.set_stream(0);
        b.set_stream(1);
        let matches = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn set_stream_rewinds() {
        let mut rng = ChaCha20Rng::from_seed([9u8; 32]);
        let first: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        rng.set_stream(0);
        let again: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        assert_eq!(first, again);
        assert_eq!(rng.get_stream(), 0);
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the subset this workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map` combinators,
//! * range strategies for the primitive numeric types, tuple strategies,
//!   [`strategy::Just`] and [`collection::vec`],
//! * the [`proptest!`] macro (with the optional
//!   `#![proptest_config(...)]` header), [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Semantic differences from upstream, acceptable for this workspace:
//! inputs are drawn from a per-test deterministic RNG (test-name hash ×
//! case index) rather than OS entropy, and there is **no shrinking** — a
//! failing case reports the case number so it can be replayed, but is not
//! minimized.

#![warn(missing_docs)]

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// The deterministic random source strategies draw from.
pub mod test_runner {
    pub use super::ProptestConfig as Config;

    /// A small, fast, deterministic RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from an explicit state.
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 and
            // irrelevant for test-case generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Drives one property over its random cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        name_hash: u64,
    }

    impl TestRunner {
        /// Creates a runner for the named test.
        pub fn new(config: Config, name: &str) -> Self {
            // FNV-1a over the test name gives every property its own
            // deterministic input sequence.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                config,
                name_hash: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for one case index.
        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(
                self.name_hash
                    .wrapping_add((case as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
            )
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive integer range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.max == self.size.min {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s with the given element strategy and length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Defines property tests: each `fn` item becomes a `#[test]` that runs its
/// body against `cases` random draws from the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for __proptest_case in 0..runner.cases() {
                let mut __proptest_rng = runner.rng_for(__proptest_case);
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut __proptest_rng,
                );)+
                let __proptest_guard = $crate::__CaseReporter(stringify!($name), __proptest_case);
                $body
                ::core::mem::forget(__proptest_guard);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Prints which case failed when a property panics. Not public API.
#[doc(hidden)]
pub struct __CaseReporter(pub &'static str, pub u32);

impl Drop for __CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at deterministic case {} \
                 (inputs are reproducible; rerun the test to replay)",
                self.0, self.1
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..=7).generate(&mut rng);
            assert!((3..=7).contains(&n));
            let k = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&k));
        }
    }

    #[test]
    fn vec_and_combinators_compose() {
        let strat = (2usize..=4)
            .prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n)))
            .prop_map(|(n, v)| {
                assert_eq!(v.len(), n);
                v
            });
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = collection::vec(0.0f64..1.0, 8);
        let a = s.generate(&mut TestRng::new(5));
        let b = s.generate(&mut TestRng::new(5));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: arguments bind, asserts work.
        #[test]
        fn macro_smoke(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n, n);
        }
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, implementing the API subset the workspace's benches
//! use: [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! benchmark groups with [`Throughput`] and per-group sample sizes,
//! [`BenchmarkId`], `Bencher::iter` and [`black_box`].
//!
//! Measurement is intentionally simple — median of `sample_size` wall-clock
//! samples after a short calibration phase, printed to stdout — but honest:
//! results are real timings of the same closures upstream criterion would
//! run, so relative comparisons (sequential vs. parallel, one IDFT size vs.
//! another) remain meaningful. There is no statistical regression analysis
//! and no HTML report.
//!
//! # Machine-readable output
//!
//! When the `CORRFADE_BENCH_JSON_DIR` environment variable is set, the
//! `criterion_main!`-generated `main` additionally writes every measured
//! median to `<dir>/BENCH_<bench-name>.json` (bench name = the benchmark
//! executable's file stem with cargo's `-<hash>` suffix stripped). The
//! format is deliberately flat — one result object per line — so the
//! `bench_regression_check` comparator in `corrfade-bench` can parse it
//! without a JSON dependency:
//!
//! ```json
//! {
//!   "bench": "doppler_idft",
//!   "results": [
//!     {"id": "doppler/ifft/4096", "median_ns": 103050.0, "throughput": {"elements": 4096}},
//!     {"id": "doppler/filter_design/1024", "median_ns": 1640.0}
//!   ]
//! }
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time one calibrated measurement sample should take.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Measurement throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Times `routine`, first calibrating how many iterations fit in one
    /// sample, then collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: double the batch until one batch takes long enough.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = (iters * 2).min(1 << 20);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median time per single iteration.
    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        ns[ns.len() / 2]
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// One measured benchmark, retained for the optional JSON report.
struct Measured {
    id: String,
    median_ns: f64,
    throughput: Option<Throughput>,
}

/// Every median measured by this process, in report order.
static MEASURED: Mutex<Vec<Measured>> = Mutex::new(Vec::new());

fn report(group: &str, id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!("{name:<56} {:>12}/iter", format_ns(median_ns));
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) => format!("{:.3e} elem/s", n as f64 / (median_ns / 1e9)),
            Throughput::Bytes(n) => format!("{:.3e} B/s", n as f64 / (median_ns / 1e9)),
        };
        line.push_str(&format!("  {per_sec:>16}"));
    }
    println!("{line}");
    MEASURED
        .lock()
        .expect("bench result registry")
        .push(Measured {
            id: name,
            median_ns,
            throughput,
        });
}

/// Minimal JSON string escaping (benchmark ids are plain ASCII, but be
/// safe about quotes/backslashes/control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The benchmark name: executable file stem with cargo's trailing
/// `-<16 hex>` disambiguation hash stripped.
fn bench_name() -> String {
    let stem = std::env::current_exe()
        .ok()
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "unknown".to_string());
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.chars().all(|c| c.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// Writes the collected medians as `BENCH_<name>.json` into
/// `$CORRFADE_BENCH_JSON_DIR`, if that variable is set. Called by the
/// `criterion_main!`-generated `main` after all groups ran; a no-op (with
/// nothing collected cleared either way) when the variable is unset.
///
/// # Panics
/// Panics if the directory or file cannot be written — a benchmark run
/// asked to persist its medians must not silently drop them.
pub fn write_json_report() {
    let Ok(dir) = std::env::var("CORRFADE_BENCH_JSON_DIR") else {
        return;
    };
    let name = bench_name();
    let measured = MEASURED.lock().expect("bench result registry");
    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(body, "  \"bench\": \"{}\",", json_escape(&name));
    body.push_str("  \"results\": [\n");
    for (i, m) in measured.iter().enumerate() {
        let sep = if i + 1 == measured.len() { "" } else { "," };
        let throughput = match m.throughput {
            Some(Throughput::Elements(n)) => format!(", \"throughput\": {{\"elements\": {n}}}"),
            Some(Throughput::Bytes(n)) => format!(", \"throughput\": {{\"bytes\": {n}}}"),
            None => String::new(),
        };
        let _ = writeln!(
            body,
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}{}}}{}",
            json_escape(&m.id),
            m.median_ns,
            throughput,
            sep
        );
    }
    body.push_str("  ]\n}\n");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create bench JSON dir {dir}: {e}"));
    let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
    std::fs::write(&path, body)
        .unwrap_or_else(|e| panic!("cannot write bench JSON {}: {e}", path.display()));
    println!("bench medians written to {}", path.display());
}

/// A named collection of related benchmarks sharing throughput/sample-size
/// settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput, so the report can
    /// show elements/second.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the stand-in derives its measurement time from the sample size.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        report(&self.name, &id.id, bencher.median_ns(), self.throughput);
        self
    }

    /// Runs one benchmark that receives an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        report(&self.name, &id.id, bencher.median_ns(), self.throughput);
        self
    }

    /// Finishes the group. (No-op beyond marking intent, as upstream.)
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        report("", id, bencher.median_ns(), None);
        self
    }
}

/// Declares a group of benchmark functions, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups and then
/// persists the medians as JSON when `CORRFADE_BENCH_JSON_DIR` is set.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.median_ns().is_finite());
        assert!(b.median_ns() >= 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter(4096).id, "4096");
    }

    #[test]
    fn json_escaping_and_bench_name() {
        assert_eq!(json_escape("doppler/ifft/4096"), "doppler/ifft/4096");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        // The test binary's own stem ends in a cargo hash, so the name must
        // not contain one.
        let name = bench_name();
        assert!(!name.is_empty());
        if let Some((_, tail)) = name.rsplit_once('-') {
            assert!(!(tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit())));
        }
    }

    #[test]
    fn measured_results_are_collected() {
        let before = MEASURED.lock().unwrap().len();
        report("g", "case", 123.0, Some(Throughput::Elements(7)));
        let measured = MEASURED.lock().unwrap();
        assert!(measured.len() > before);
        let last = measured.last().unwrap();
        assert_eq!(last.id, "g/case");
        assert_eq!(last.median_ns, 123.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}

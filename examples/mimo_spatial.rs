//! MIMO antenna-array spatially-correlated fading: the paper's second
//! experiment (Sec. 6, covariance Eq. 23, Fig. 4b).
//!
//! A uniform linear array of transmit antennas produces correlated fades
//! whose strength depends on the spacing and the angular spread of the
//! arriving scatter. This example walks the registered spatial scenarios to
//! show how the geometry changes the correlation (and hence the achievable
//! diversity), then generates the paper's exact scenario.
//!
//! Run with: `cargo run --release --example mimo_spatial`

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::{iter, lookup, CovarianceSpec};
use corrfade_stats::{relative_frobenius_error, sample_covariance_from_block};

fn main() {
    // How does adjacent-antenna correlation depend on geometry? Compare the
    // registered spatial scenarios.
    println!("adjacent-antenna correlation |K[1,2]| across the registered spatial scenarios:");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14}",
        "scenario", "D/lambda", "Phi [deg]", "spread [deg]", "|correlation|"
    );
    for scenario in iter() {
        let CovarianceSpec::Spatial {
            spacing_wavelengths,
            mean_arrival_rad,
            angular_spread_rad,
        } = scenario.covariance
        else {
            continue;
        };
        let k = scenario.covariance_matrix().expect("valid scenario");
        let corr = k[(0, 1)].abs() / (k[(0, 0)].re * k[(1, 1)].re).sqrt();
        println!(
            "{:<22} {:>10.2} {:>12.1} {:>12.1} {:>14.4}",
            scenario.name,
            spacing_wavelengths,
            mean_arrival_rad.to_degrees(),
            angular_spread_rad.to_degrees(),
            corr
        );
    }

    // The paper's exact scenario: D/lambda = 1, spread 10 degrees, broadside.
    let paper = lookup("fig4b-spatial").expect("registered scenario");
    let k = paper.covariance_matrix().expect("valid scenario");
    println!();
    println!("desired covariance matrix (paper Eq. 23):\n{k:.4}");

    // Single-instant mode: 100k snapshots streamed as one planar block,
    // check E[Z Z^H] = K without materializing any snapshot vectors.
    let mut gen = paper
        .build(0x313D)
        .expect("valid configuration")
        .with_stream_block_len(100_000);
    let mut block = SampleBlock::empty();
    gen.next_block_into(&mut block)
        .expect("valid configuration");
    let khat = sample_covariance_from_block(&block);
    println!("achieved covariance (100k snapshots):\n{khat:.4}");
    println!(
        "relative Frobenius error: {:.4}",
        relative_frobenius_error(&khat, &k)
    );

    // Envelope statistics per antenna (all powers are 1).
    let mut gen = paper.build(0x313E).expect("valid configuration");
    let paths = gen.generate_envelope_paths(100_000);
    println!();
    for (j, p) in paths.iter().enumerate() {
        let check = corrfade_stats::check_envelope_moments(p, 1.0);
        println!(
            "antenna {}: envelope mean {:.4} (theory {:.4}), variance {:.4} (theory {:.4})",
            j + 1,
            check.sample_mean,
            check.theoretical_mean,
            check.sample_variance,
            check.theoretical_variance
        );
    }

    // Off-broadside arrival produces complex covariances — the general case
    // the algorithm supports and several conventional methods do not.
    let tilted = lookup("mimo-offbroadside").expect("registered scenario");
    let k_tilted = tilted.covariance_matrix().expect("valid scenario");
    println!();
    println!(
        "off-broadside ({}) covariance is complex:\n{k_tilted:.4}",
        tilted.title
    );
}

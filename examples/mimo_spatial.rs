//! MIMO antenna-array spatially-correlated fading: the paper's second
//! experiment (Sec. 6, covariance Eq. 23, Fig. 4b).
//!
//! A uniform linear array of transmit antennas spaced one wavelength apart,
//! with all scatter arriving within ±10° of broadside, produces strongly
//! correlated fades on adjacent antennas. This example sweeps the antenna
//! spacing and the angular spread to show how the correlation (and hence the
//! achievable diversity) changes, then generates the paper's exact scenario.
//!
//! Run with: `cargo run --release --example mimo_spatial`

use corrfade::GeneratorBuilder;
use corrfade_models::SalzWintersSpatialModel;
use corrfade_stats::{relative_frobenius_error, sample_covariance};

fn main() {
    // How does adjacent-antenna correlation depend on spacing and spread?
    println!("adjacent-antenna correlation |K[1,2]| as a function of geometry:");
    println!(
        "{:>12} {:>12} {:>14}",
        "D/lambda", "spread [deg]", "|correlation|"
    );
    for &spacing in &[0.25f64, 0.5, 1.0, 2.0] {
        for &spread_deg in &[2.0f64, 10.0, 30.0, 90.0] {
            let model = SalzWintersSpatialModel::new(1.0, spacing, 0.0, spread_deg.to_radians());
            let c = model.complex_covariance(0, 1).abs();
            println!("{spacing:>12.2} {spread_deg:>12.1} {c:>14.4}");
        }
    }

    // The paper's exact scenario: D/lambda = 1, spread 10 degrees, broadside.
    let paper_model = SalzWintersSpatialModel::new(1.0, 1.0, 0.0, std::f64::consts::PI / 18.0);
    let builder = GeneratorBuilder::new()
        .spatial_scenario(paper_model, 3)
        .seed(0x313D);
    let k = builder.resolve_covariance().expect("valid scenario");
    println!();
    println!("desired covariance matrix (paper Eq. 23):\n{k:.4}");

    // Single-instant mode: 100k snapshots, check E[Z Z^H] = K.
    let mut gen = builder.build().expect("valid configuration");
    let snaps = gen.generate_snapshots(100_000);
    let khat = sample_covariance(&snaps);
    println!("achieved covariance (100k snapshots):\n{khat:.4}");
    println!(
        "relative Frobenius error: {:.4}",
        relative_frobenius_error(&khat, &k)
    );

    // Envelope statistics per antenna (all powers are 1).
    let mut gen = GeneratorBuilder::new()
        .spatial_scenario(
            SalzWintersSpatialModel::new(1.0, 1.0, 0.0, std::f64::consts::PI / 18.0),
            3,
        )
        .seed(0x313E)
        .build()
        .expect("valid configuration");
    let paths = gen.generate_envelope_paths(100_000);
    println!();
    for (j, p) in paths.iter().enumerate() {
        let check = corrfade_stats::check_envelope_moments(p, 1.0);
        println!(
            "antenna {}: envelope mean {:.4} (theory {:.4}), variance {:.4} (theory {:.4})",
            j + 1,
            check.sample_mean,
            check.theoretical_mean,
            check.sample_variance,
            check.theoretical_variance
        );
    }

    // Off-broadside arrival produces complex covariances — the general case
    // the algorithm supports and several conventional methods do not.
    let tilted = SalzWintersSpatialModel::new(1.0, 0.5, std::f64::consts::FRAC_PI_4, 0.3);
    let k_tilted = tilted.covariance_matrix(3).expect("valid scenario");
    println!();
    println!("off-broadside (Phi = 45 deg) covariance is complex:\n{k_tilted:.4}");
}

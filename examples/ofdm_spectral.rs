//! OFDM-style spectrally-correlated fading: the paper's first experiment
//! (Sec. 6, covariance Eq. 22, Fig. 4a), resolved from the registry as the
//! `fig4a-spectral` scenario.
//!
//! Three sub-carriers 200 kHz apart observed through a GSM-900 channel
//! (Fm = 50 Hz, σ_τ = 1 µs) with arrival delays of 1/3/4 ms produce
//! frequency-correlated Rayleigh fading. This example resolves the scenario
//! by name, generates the envelopes in real-time (Doppler) mode and prints
//! the achieved statistics.
//!
//! Run with: `cargo run --release --example ofdm_spectral`

use corrfade::{ChannelStream, SampleBlock};
use corrfade_linalg::CMatrix;
use corrfade_scenarios::lookup;
use corrfade_stats::relative_frobenius_error;

fn main() {
    let scenario = lookup("fig4a-spectral").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);

    // The physical channel behind the scenario: GSM 900, 60 km/h, 1 kHz
    // sampling, 1 µs delay spread.
    let channel = scenario.channel;
    println!(
        "maximum Doppler frequency: {:.1} Hz",
        channel.max_doppler_hz()
    );
    println!(
        "normalized Doppler fm:     {:.3}",
        channel.normalized_doppler()
    );

    let k = scenario.covariance_matrix().expect("valid scenario");
    println!();
    println!("desired covariance matrix (paper Eq. 22):\n{k:.4}");

    // Real-time mode with the scenario's settings: M = 4096, fm = 0.05,
    // sigma_orig^2 = 0.5.
    let mut gen = scenario
        .build_realtime(0x0FD)
        .expect("valid real-time configuration");
    println!(
        "Doppler filter: M = {}, km = {}, output variance (Eq. 19) = {:.4}",
        gen.block_len(),
        gen.filter().km(),
        gen.doppler_output_variance()
    );

    // Stream 10 blocks (~41 k samples per envelope) through one pooled
    // planar block, folding the covariance straight from the planar data
    // and keeping only the first envelope's concatenated Rayleigh path for
    // the second-order statistics.
    let n = gen.dimension();
    let mut block = SampleBlock::empty();
    let mut acc = CMatrix::zeros(n, n);
    let mut env0: Vec<f64> = Vec::new();
    let mut samples = 0usize;
    let mut first_block_db: Vec<Vec<f64>> = Vec::new();
    for i in 0..10 {
        gen.next_block_into(&mut block)
            .expect("valid configuration");
        block.accumulate_covariance(&mut acc);
        samples += block.samples();
        if i == 0 {
            // The first 20 samples of each envelope in dB around RMS — the
            // quantity plotted in the paper's Fig. 4(a).
            first_block_db = (0..n)
                .map(|j| corrfade_stats::envelope_db_around_rms(&block.envelope_path(j)[..200]))
                .collect();
        }
        env0.extend_from_slice(block.envelope_path(0));
    }
    let khat = acc.scale_real(1.0 / samples as f64);
    println!();
    println!("achieved covariance:\n{khat:.4}");
    println!(
        "relative Frobenius error vs desired: {:.4}",
        relative_frobenius_error(&khat, &k)
    );

    println!();
    println!("first 20 samples (dB around RMS), one row per envelope:");
    for db in &first_block_db {
        let row: Vec<String> = db[..20].iter().map(|v| format!("{v:6.1}")).collect();
        println!("  {}", row.join(" "));
    }

    // Fading metrics of the first envelope.
    let fm = scenario.doppler.normalized_doppler;
    let env = &env0;
    let rms = corrfade_stats::envelope_rms(env);
    let rho = 0.5f64;
    let lcr = corrfade_stats::empirical_lcr(env, rho * rms);
    let afd = corrfade_stats::empirical_afd(env, rho * rms);
    println!();
    println!("envelope 1 second-order statistics at rho = 0.5 (threshold = 0.5 * RMS):");
    println!(
        "  level crossing rate: {:.5} per sample (theory {:.5})",
        lcr,
        corrfade_stats::theoretical_lcr(rho, fm)
    );
    println!(
        "  average fade duration: {:.2} samples (theory {:.2})",
        afd,
        corrfade_stats::theoretical_afd(rho, fm)
    );
}

//! Unequal-power envelopes and non-PSD covariance targets — the two
//! generalizations the paper's title promises over the conventional methods,
//! resolved from the registry as the `unequal-power-spatial` and
//! `indefinite-rho09` scenarios.
//!
//! Run with: `cargo run --release --example unequal_power`

use corrfade_scenarios::{lookup, PowerProfile};
use corrfade_stats::{relative_frobenius_error, sample_covariance_from_block};

fn main() {
    // 1. Unequal powers specified as desired *envelope* variances σ_r²
    //    (converted through Eq. 11), on top of the paper's spatial
    //    correlation structure.
    let scenario = lookup("unequal-power-spatial").expect("registered scenario");
    let PowerProfile::Envelope(requested) = scenario.powers else {
        unreachable!("unequal-power-spatial declares envelope powers");
    };
    let mut gen = scenario.build(0xAB).expect("valid configuration");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    println!("desired covariance with unequal powers (Eq. 11 applied):");
    println!("{:.4}", gen.desired_covariance());

    let paths = gen.generate_envelope_paths(150_000);
    for (j, p) in paths.iter().enumerate() {
        println!(
            "envelope {}: requested sigma_r^2 = {:.3}, measured envelope variance = {:.3}",
            j + 1,
            requested[j],
            corrfade_stats::variance(p)
        );
    }

    // 2. A covariance target that is NOT positive semi-definite: correlation
    //    +0.9 / +0.9 / -0.9 is jointly infeasible. Conventional Cholesky
    //    methods abort; the proposed algorithm replaces the target with its
    //    closest PSD approximation and proceeds.
    let stress = lookup("indefinite-rho09").expect("registered scenario");
    let infeasible = stress.covariance_matrix().expect("valid scenario");
    println!();
    println!("scenario: {} — {}", stress.name, stress.title);
    println!("infeasible (non-PSD) covariance target:");
    println!("{infeasible:.4}");
    println!(
        "Cholesky (conventional methods): {}",
        match corrfade_linalg::cholesky(&infeasible) {
            Ok(_) => "succeeded (unexpected!)".to_string(),
            Err(e) => format!("fails — {e}"),
        }
    );

    let mut gen = stress
        .build(0xAC)
        .expect("the proposed algorithm accepts non-PSD targets");
    println!(
        "proposed algorithm: clipped {} negative eigenvalue(s); realized (closest PSD) covariance:",
        gen.coloring().psd.clipped_count
    );
    println!("{:.4}", gen.realized_covariance());

    gen.set_stream_block_len(150_000);
    let mut block = corrfade::SampleBlock::empty();
    corrfade::ChannelStream::next_block_into(&mut gen, &mut block).expect("valid configuration");
    let khat = sample_covariance_from_block(&block);
    println!("sample covariance of the generated envelopes:");
    println!("{khat:.4}");
    println!(
        "rel. error vs realized (forced) covariance: {:.4}",
        relative_frobenius_error(&khat, &gen.realized_covariance())
    );
    println!(
        "rel. distance of forced covariance from the infeasible target: {:.4}",
        relative_frobenius_error(&gen.realized_covariance(), &infeasible)
    );
}

//! Unequal-power envelopes and non-PSD covariance targets — the two
//! generalizations the paper's title promises over the conventional methods.
//!
//! Run with: `cargo run --release --example unequal_power`

use corrfade::{CorrelatedRayleighGenerator, GeneratorBuilder};
use corrfade_linalg::{c64, CMatrix};
use corrfade_models::paper_spatial_scenario;
use corrfade_stats::{relative_frobenius_error, sample_covariance};

fn main() {
    // 1. Unequal powers specified as desired *envelope* variances σ_r²
    //    (converted through Eq. 11), on top of the paper's spatial
    //    correlation structure.
    let requested = [0.1f64, 0.5, 1.0];
    let mut gen = GeneratorBuilder::new()
        .spatial_scenario(paper_spatial_scenario(), 3)
        .envelope_powers(&requested)
        .seed(0xAB)
        .build()
        .expect("valid configuration");
    println!("desired covariance with unequal powers (Eq. 11 applied):");
    println!("{:.4}", gen.desired_covariance());

    let paths = gen.generate_envelope_paths(150_000);
    for (j, p) in paths.iter().enumerate() {
        println!(
            "envelope {}: requested sigma_r^2 = {:.3}, measured envelope variance = {:.3}",
            j + 1,
            requested[j],
            corrfade_stats::variance(p)
        );
    }

    // 2. A covariance target that is NOT positive semi-definite: correlation
    //    +0.9 / +0.9 / -0.9 is jointly infeasible. Conventional Cholesky
    //    methods abort; the proposed algorithm replaces the target with its
    //    closest PSD approximation and proceeds.
    let infeasible = CMatrix::from_rows(&[
        vec![c64(1.0, 0.0), c64(0.9, 0.0), c64(-0.9, 0.0)],
        vec![c64(0.9, 0.0), c64(1.0, 0.0), c64(0.9, 0.0)],
        vec![c64(-0.9, 0.0), c64(0.9, 0.0), c64(1.0, 0.0)],
    ]);
    println!();
    println!("infeasible (non-PSD) covariance target:");
    println!("{infeasible:.4}");
    println!(
        "Cholesky (conventional methods): {}",
        match corrfade_linalg::cholesky(&infeasible) {
            Ok(_) => "succeeded (unexpected!)".to_string(),
            Err(e) => format!("fails — {e}"),
        }
    );

    let mut gen = CorrelatedRayleighGenerator::new(infeasible.clone(), 0xAC)
        .expect("the proposed algorithm accepts non-PSD targets");
    println!(
        "proposed algorithm: clipped {} negative eigenvalue(s); realized (closest PSD) covariance:",
        gen.coloring().psd.clipped_count
    );
    println!("{:.4}", gen.realized_covariance());

    let khat = sample_covariance(&gen.generate_snapshots(150_000));
    println!("sample covariance of the generated envelopes:");
    println!("{khat:.4}");
    println!(
        "rel. error vs realized (forced) covariance: {:.4}",
        relative_frobenius_error(&khat, &gen.realized_covariance())
    );
    println!(
        "rel. distance of forced covariance from the infeasible target: {:.4}",
        relative_frobenius_error(&gen.realized_covariance(), &infeasible)
    );
}

//! Real-time (Doppler-correlated) generation: the paper's Sec. 5 algorithm.
//!
//! Demonstrates that the generated processes have *both* the requested
//! cross-correlation (covariance matrix) and the Clarke/Jakes temporal
//! autocorrelation J0(2*pi*fm*d), and that the result does not depend on the
//! variance of the Gaussian sequences feeding the Doppler filter — the
//! correction over ref. [6] that motivates Sec. 5 of the paper.
//!
//! Run with: `cargo run --release --example realtime_doppler`

use corrfade::{RealtimeConfig, RealtimeGenerator};
use corrfade_models::paper_covariance_matrix_22;
use corrfade_specfun::bessel_j0;
use corrfade_stats::{
    normalized_autocorrelation, relative_frobenius_error, sample_covariance_from_paths,
};

fn main() {
    let k = paper_covariance_matrix_22();
    let fm = 0.05;

    println!("real-time generation of 3 correlated envelopes, fm = {fm}, M = 4096");

    // The invariance to sigma_orig^2 is the point: sweep it.
    for &sigma_orig_sq in &[0.1f64, 0.5, 2.0] {
        let mut gen = RealtimeGenerator::new(RealtimeConfig {
            covariance: k.clone(),
            idft_size: 4096,
            normalized_doppler: fm,
            sigma_orig_sq,
            seed: 0xD0,
        })
        .expect("valid configuration");

        let block = gen.generate_blocks(8);
        let khat = sample_covariance_from_paths(&block.gaussian_paths);
        println!(
            "  sigma_orig^2 = {sigma_orig_sq:>4}: Doppler output variance (Eq. 19) = {:.4}, \
             covariance rel. error = {:.4}",
            gen.doppler_output_variance(),
            relative_frobenius_error(&khat, &k)
        );
    }

    // Temporal autocorrelation of one envelope vs the J0 target.
    let mut gen = RealtimeGenerator::new(RealtimeConfig {
        covariance: k,
        idft_size: 4096,
        normalized_doppler: fm,
        sigma_orig_sq: 0.5,
        seed: 0xD1,
    })
    .expect("valid configuration");
    let block = gen.generate_blocks(8);
    let rho = normalized_autocorrelation(&block.gaussian_paths[0], 60);
    println!();
    println!("{:>6} {:>12} {:>12}", "lag", "measured", "J0(2*pi*fm*d)");
    for &d in &[0usize, 5, 10, 15, 20, 30, 40, 50, 60] {
        println!(
            "{d:>6} {:>12.4} {:>12.4}",
            rho[d],
            bessel_j0(2.0 * std::f64::consts::PI * fm * d as f64)
        );
    }

    // Deep-fade structure: level crossing rate across thresholds.
    let env = &block.envelope_paths[0];
    let rms = corrfade_stats::envelope_rms(env);
    println!();
    println!(
        "{:>10} {:>16} {:>16}",
        "rho=R/Rrms", "LCR measured", "LCR theory"
    );
    for &rho_t in &[0.1f64, 0.3, 0.5, 1.0, 1.5] {
        println!(
            "{rho_t:>10.1} {:>16.5} {:>16.5}",
            corrfade_stats::empirical_lcr(env, rho_t * rms),
            corrfade_stats::theoretical_lcr(rho_t, fm)
        );
    }
}

//! Real-time (Doppler-correlated) generation: the paper's Sec. 5 algorithm,
//! on the registered `fig4a-spectral` scenario.
//!
//! Demonstrates that the generated processes have *both* the requested
//! cross-correlation (covariance matrix) and the Clarke/Jakes temporal
//! autocorrelation J0(2*pi*fm*d), and that the result does not depend on the
//! variance of the Gaussian sequences feeding the Doppler filter — the
//! correction over ref. [6] that motivates Sec. 5 of the paper.
//!
//! Run with: `cargo run --release --example realtime_doppler`

use corrfade::{ChannelStream, RealtimeGenerator, SampleBlock};
use corrfade_linalg::{CMatrix, Complex64};
use corrfade_scenarios::lookup;
use corrfade_specfun::bessel_j0;
use corrfade_stats::{normalized_autocorrelation, relative_frobenius_error};

fn main() {
    let scenario = lookup("fig4a-spectral").expect("registered scenario");
    let k = scenario.covariance_matrix().expect("valid scenario");
    let fm = scenario.doppler.normalized_doppler;

    println!(
        "real-time generation of {} correlated envelopes (scenario {}), fm = {fm}, M = {}",
        scenario.envelopes, scenario.name, scenario.doppler.idft_size
    );

    // One pooled planar block serves every streamed generator in this
    // example — steady-state generation allocates nothing.
    let mut block = SampleBlock::empty();

    // The invariance to sigma_orig^2 is the point: sweep it around the
    // scenario's default of 0.5.
    for &sigma_orig_sq in &[0.1f64, 0.5, 2.0] {
        let mut cfg = scenario.realtime_config(0xD0).expect("valid scenario");
        cfg.sigma_orig_sq = sigma_orig_sq;
        let mut gen = RealtimeGenerator::new(cfg).expect("valid configuration");

        // Fold the covariance straight from the planar data of 8 blocks.
        let mut acc = CMatrix::zeros(gen.dimension(), gen.dimension());
        let mut samples = 0usize;
        for _ in 0..8 {
            gen.next_block_into(&mut block)
                .expect("valid configuration");
            block.accumulate_covariance(&mut acc);
            samples += block.samples();
        }
        let khat = acc.scale_real(1.0 / samples as f64);
        println!(
            "  sigma_orig^2 = {sigma_orig_sq:>4}: Doppler output variance (Eq. 19) = {:.4}, \
             covariance rel. error = {:.4}",
            gen.doppler_output_variance(),
            relative_frobenius_error(&khat, &k)
        );
    }

    // Temporal autocorrelation of one envelope vs the J0 target, measured on
    // the concatenation of 8 streamed blocks.
    let mut gen = scenario.build_realtime(0xD1).expect("valid configuration");
    let mut path0: Vec<Complex64> = Vec::new();
    let mut env0: Vec<f64> = Vec::new();
    for _ in 0..8 {
        gen.next_block_into(&mut block)
            .expect("valid configuration");
        path0.extend_from_slice(block.path(0));
        env0.extend_from_slice(block.envelope_path(0));
    }
    let rho = normalized_autocorrelation(&path0, 60);
    println!();
    println!("{:>6} {:>12} {:>12}", "lag", "measured", "J0(2*pi*fm*d)");
    for &d in &[0usize, 5, 10, 15, 20, 30, 40, 50, 60] {
        println!(
            "{d:>6} {:>12.4} {:>12.4}",
            rho[d],
            bessel_j0(2.0 * std::f64::consts::PI * fm * d as f64)
        );
    }

    // Deep-fade structure: level crossing rate across thresholds.
    let env = &env0;
    let rms = corrfade_stats::envelope_rms(env);
    println!();
    println!(
        "{:>10} {:>16} {:>16}",
        "rho=R/Rrms", "LCR measured", "LCR theory"
    );
    for &rho_t in &[0.1f64, 0.3, 0.5, 1.0, 1.5] {
        println!(
            "{rho_t:>10.1} {:>16.5} {:>16.5}",
            corrfade_stats::empirical_lcr(env, rho_t * rms),
            corrfade_stats::theoretical_lcr(rho_t, fm)
        );
    }
}

//! Side-by-side comparison of the proposed algorithm with the conventional
//! methods it generalizes (the paper's references [1]–[6]).
//!
//! For a set of registered scenarios of increasing difficulty, every method
//! is asked to stream ~50 000 snapshots through the shared `ChannelStream`
//! interface; the table reports whether it could run at all and, if so, the
//! relative Frobenius error between the achieved and the desired covariance
//! (folded straight from the planar blocks).
//!
//! Run with: `cargo run --release --example baseline_comparison`

use corrfade::{ChannelStream, SampleBlock};
use corrfade_baselines::{BaselineMethod, NatarajanGenerator};
use corrfade_linalg::CMatrix;
use corrfade_scenarios::lookup;
use corrfade_stats::relative_frobenius_error;

const SNAPSHOTS: usize = 50_000;

fn err_or_fail(
    stream: Result<Box<dyn ChannelStream>, String>,
    k: &CMatrix,
    block: &mut SampleBlock,
) -> String {
    match stream {
        Ok(mut s) => {
            let mut acc = CMatrix::zeros(s.dimension(), s.dimension());
            let mut total = 0usize;
            while total < SNAPSHOTS {
                s.next_block_into(block)
                    .expect("in-tree streams are infallible after construction");
                block.accumulate_covariance(&mut acc);
                total += block.samples();
            }
            let khat = acc.scale_real(1.0 / total as f64);
            format!("{:.3}", relative_frobenius_error(&khat, k))
        }
        Err(reason) => reason,
    }
}

fn main() {
    let scenario_names = [
        "fig4b-spatial",
        "fig4a-spectral",
        "baseline-unequal",
        "indefinite-rho09",
    ];

    println!(
        "{:<22} {:<14} {:<16} {:<18} {:<14} {:<18}",
        "scenario",
        "proposed",
        "Salz-Winters[1]",
        "Beaulieu-Merani[4]",
        "Natarajan[5]",
        "Sorooshyari-Daut[6]"
    );
    println!(
        "(numbers are relative Frobenius errors of the achieved covariance; text = failure reason)"
    );

    // One pooled planar block serves every method on every scenario.
    let mut block = SampleBlock::empty();
    for name in scenario_names {
        let scenario = lookup(name).expect("registered scenario");
        let k = scenario.covariance_matrix().expect("valid scenario");
        let proposed = err_or_fail(
            scenario
                .stream_snapshots(1)
                .map_err(|e| format!("fail: {e}")),
            &k,
            &mut block,
        );
        let sw = err_or_fail(
            BaselineMethod::SalzWinters
                .try_stream(&k, 1)
                .map_err(|_| "fail".to_string()),
            &k,
            &mut block,
        );
        let bm = err_or_fail(
            BaselineMethod::BeaulieuMerani
                .try_stream(&k, 1)
                .map_err(|_| "fail".to_string()),
            &k,
            &mut block,
        );
        // Natarajan[5] runs in its lossy mode (imaginary parts dropped), a
        // constructor `try_stream` does not expose.
        let nat = err_or_fail(
            NatarajanGenerator::new_lossy(&k, 1)
                .map(|g| Box::new(g) as Box<dyn ChannelStream>)
                .map_err(|_| "fail".to_string()),
            &k,
            &mut block,
        );
        let sd = err_or_fail(
            BaselineMethod::SorooshyariDaut
                .try_stream(&k, 1)
                .map_err(|_| "fail".to_string()),
            &k,
            &mut block,
        );

        println!("{name:<22} {proposed:<14} {sw:<16} {bm:<18} {nat:<14} {sd:<18}");
    }

    println!();
    println!("Notes:");
    println!("  * on the non-PSD target the proposed algorithm (and Sorooshyari-Daut) report the");
    println!(
        "    error against the original, infeasible matrix — the residual error is exactly the"
    );
    println!("    distance to the closest realizable (PSD) covariance.");
    println!(
        "  * Natarajan[5] runs in its lossy mode (imaginary parts dropped), so its error on the"
    );
    println!("    spectral scenario reflects the bias of forcing covariances to be real.");
}

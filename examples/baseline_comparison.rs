//! Side-by-side comparison of the proposed algorithm with the conventional
//! methods it generalizes (the paper's references [1]–[6]).
//!
//! For a set of registered scenarios of increasing difficulty, every method
//! is asked to generate 50 000 snapshots; the table reports whether it could
//! run at all and, if so, the relative Frobenius error between the achieved
//! and the desired covariance.
//!
//! Run with: `cargo run --release --example baseline_comparison`

use corrfade_baselines::{
    BeaulieuMeraniGenerator, NatarajanGenerator, SalzWintersGenerator, SorooshyariDautGenerator,
};
use corrfade_linalg::CMatrix;
use corrfade_scenarios::lookup;
use corrfade_stats::{relative_frobenius_error, sample_covariance};

const SNAPSHOTS: usize = 50_000;

fn err_or_fail<F>(build: F, k: &CMatrix) -> String
where
    F: FnOnce() -> Result<Vec<Vec<corrfade_linalg::Complex64>>, String>,
{
    match build() {
        Ok(snaps) => {
            let khat = sample_covariance(&snaps);
            format!("{:.3}", relative_frobenius_error(&khat, k))
        }
        Err(reason) => reason,
    }
}

fn main() {
    let scenario_names = [
        "fig4b-spatial",
        "fig4a-spectral",
        "baseline-unequal",
        "indefinite-rho09",
    ];

    println!(
        "{:<22} {:<14} {:<16} {:<18} {:<14} {:<18}",
        "scenario",
        "proposed",
        "Salz-Winters[1]",
        "Beaulieu-Merani[4]",
        "Natarajan[5]",
        "Sorooshyari-Daut[6]"
    );
    println!(
        "(numbers are relative Frobenius errors of the achieved covariance; text = failure reason)"
    );

    for name in scenario_names {
        let scenario = lookup(name).expect("registered scenario");
        let k = scenario.covariance_matrix().expect("valid scenario");
        let proposed = err_or_fail(
            || {
                scenario
                    .build(1)
                    .map(|mut g| g.generate_snapshots(SNAPSHOTS))
                    .map_err(|e| format!("fail: {e}"))
            },
            &k,
        );
        let sw = err_or_fail(
            || {
                SalzWintersGenerator::new(&k, 1)
                    .map(|mut g| g.generate_snapshots(SNAPSHOTS))
                    .map_err(|_| "fail".to_string())
            },
            &k,
        );
        let bm = err_or_fail(
            || {
                BeaulieuMeraniGenerator::new(&k, 1)
                    .map(|mut g| g.generate_snapshots(SNAPSHOTS))
                    .map_err(|_| "fail".to_string())
            },
            &k,
        );
        let nat = err_or_fail(
            || {
                NatarajanGenerator::new_lossy(&k, 1)
                    .map(|mut g| g.generate_snapshots(SNAPSHOTS))
                    .map_err(|_| "fail".to_string())
            },
            &k,
        );
        let sd = err_or_fail(
            || {
                SorooshyariDautGenerator::new(&k, 1)
                    .map(|mut g| g.generate_snapshots(SNAPSHOTS))
                    .map_err(|_| "fail".to_string())
            },
            &k,
        );

        println!("{name:<22} {proposed:<14} {sw:<16} {bm:<18} {nat:<14} {sd:<18}");
    }

    println!();
    println!("Notes:");
    println!("  * on the non-PSD target the proposed algorithm (and Sorooshyari-Daut) report the");
    println!(
        "    error against the original, infeasible matrix — the residual error is exactly the"
    );
    println!("    distance to the closest realizable (PSD) covariance.");
    println!(
        "  * Natarajan[5] runs in its lossy mode (imaginary parts dropped), so its error on the"
    );
    println!("    spectral scenario reflects the bias of forcing covariances to be real.");
}

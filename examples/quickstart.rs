//! Quickstart: generate three correlated Rayleigh fading envelopes from an
//! explicit covariance matrix and check their statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use corrfade::{CorrelatedRayleighGenerator, GeneratorBuilder};
use corrfade_linalg::{c64, CMatrix};
use corrfade_stats::{relative_frobenius_error, sample_covariance};

fn main() {
    println!("corrfade quickstart (v{})", corrfade_suite::VERSION);
    println!();

    // 1. Specify the desired covariance matrix K of the complex Gaussian
    //    processes. The diagonal holds the per-envelope powers σ_g²; the
    //    off-diagonal entries may be complex.
    let k = CMatrix::from_rows(&[
        vec![c64(1.0, 0.0), c64(0.55, 0.25), c64(0.10, 0.05)],
        vec![c64(0.55, -0.25), c64(1.0, 0.0), c64(0.45, 0.15)],
        vec![c64(0.10, -0.05), c64(0.45, -0.15), c64(1.0, 0.0)],
    ]);

    // 2. Build the generator (eigendecomposition + coloring happen here).
    let mut gen = CorrelatedRayleighGenerator::new(k.clone(), 42).expect("valid covariance");
    println!("envelopes: {}", gen.dimension());
    println!(
        "covariance was PSD: {} (clipped eigenvalues: {})",
        gen.coloring().psd.was_positive_semidefinite,
        gen.coloring().psd.clipped_count
    );

    // 3. Draw a few samples: each sample is one vector of N complex Gaussians
    //    and their Rayleigh envelopes.
    println!();
    println!("first five samples (envelopes):");
    for i in 0..5 {
        let s = gen.sample();
        let formatted: Vec<String> = s.envelopes.iter().map(|r| format!("{r:.3}")).collect();
        println!("  sample {i}: [{}]", formatted.join(", "));
    }

    // 4. Verify the headline property E[Z·Z^H] = K on a larger ensemble.
    let snaps = gen.generate_snapshots(100_000);
    let khat = sample_covariance(&snaps);
    println!();
    println!("desired covariance:\n{k:.4}");
    println!("sample covariance over 100k snapshots:\n{khat:.4}");
    println!(
        "relative Frobenius error: {:.4}",
        relative_frobenius_error(&khat, &k)
    );

    // 5. The same thing through the builder, starting from desired envelope
    //    powers σ_r² (Eq. 11 conversion happens internally).
    let mut gen2 = GeneratorBuilder::new()
        .covariance(k)
        .envelope_powers(&[0.2146, 0.4292, 0.2146])
        .seed(7)
        .build()
        .expect("valid configuration");
    let paths = gen2.generate_envelope_paths(50_000);
    println!();
    println!("builder with envelope powers [0.2146, 0.4292, 0.2146]:");
    for (j, p) in paths.iter().enumerate() {
        println!(
            "  envelope {} variance: {:.4} (requested {:.4})",
            j + 1,
            corrfade_stats::variance(p),
            [0.2146, 0.4292, 0.2146][j]
        );
    }
}

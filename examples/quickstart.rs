//! Quickstart: generate three correlated Rayleigh fading envelopes from a
//! named scenario in the registry and check their statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use corrfade::{ChannelStream, SampleBlock};
use corrfade_scenarios::lookup;
use corrfade_stats::{relative_frobenius_error, sample_covariance_from_block};

fn main() {
    println!("corrfade quickstart (v{})", corrfade_suite::VERSION);
    println!();

    // 1. Pick a scenario from the registry by name. `quickstart-demo` is a
    //    small, well-behaved 3x3 complex covariance; run
    //    `corrfade_scenarios::names()` for the full catalog.
    let scenario = lookup("quickstart-demo").expect("registered scenario");
    println!("scenario: {} — {}", scenario.name, scenario.title);
    let k = scenario.covariance_matrix().expect("valid scenario");

    // 2. Build the generator (eigendecomposition + coloring happen here).
    let mut gen = scenario.build(42).expect("valid covariance");
    println!("envelopes: {}", gen.dimension());
    println!(
        "covariance was PSD: {} (clipped eigenvalues: {})",
        gen.coloring().psd.was_positive_semidefinite,
        gen.coloring().psd.clipped_count
    );

    // 3. Draw a few samples: each sample is one vector of N complex Gaussians
    //    and their Rayleigh envelopes.
    println!();
    println!("first five samples (envelopes):");
    for i in 0..5 {
        let s = gen.sample();
        let formatted: Vec<String> = s.envelopes.iter().map(|r| format!("{r:.3}")).collect();
        println!("  sample {i}: [{}]", formatted.join(", "));
    }

    // 4. Verify the headline property E[Z·Z^H] = K on a larger ensemble,
    //    streamed through the zero-allocation block API: the generator
    //    batches 100k snapshots into one caller-owned planar SampleBlock.
    gen.set_stream_block_len(100_000);
    let mut block = SampleBlock::empty();
    gen.next_block_into(&mut block)
        .expect("valid configuration");
    let khat = sample_covariance_from_block(&block);
    println!();
    println!("desired covariance:\n{k:.4}");
    println!("sample covariance over 100k snapshots:\n{khat:.4}");
    println!(
        "relative Frobenius error: {:.4}",
        relative_frobenius_error(&khat, &k)
    );

    // 5. The same scenario through the builder bridge, overriding the powers
    //    with desired *envelope* variances σ_r² (Eq. 11 conversion happens
    //    internally).
    let requested = [0.2146, 0.4292, 0.2146];
    let mut gen2 = scenario
        .to_builder()
        .envelope_powers(&requested)
        .seed(7)
        .build()
        .expect("valid configuration");
    let paths = gen2.generate_envelope_paths(50_000);
    println!();
    println!("builder with envelope powers {requested:?}:");
    for (j, p) in paths.iter().enumerate() {
        println!(
            "  envelope {} variance: {:.4} (requested {:.4})",
            j + 1,
            corrfade_stats::variance(p),
            requested[j]
        );
    }

    // 6. Real-time (Doppler) mode as a boxed ChannelStream: services resolve
    //    a scenario by name and stream M-sample blocks from it, reusing the
    //    same planar buffer — zero heap allocation per block in steady
    //    state.
    let mut stream = scenario.stream(3).expect("valid scenario");
    stream.next_block_into(&mut block).expect("valid scenario");
    println!();
    println!(
        "streamed one real-time block: {} envelopes x {} Doppler-correlated samples",
        block.envelopes(),
        block.samples()
    );
}

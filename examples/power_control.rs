//! Transmission power control (TPC) over a correlated WSN link field.
//!
//! Opens a 5×5 sensor grid as a [`corrfade_network::NetworkSim`], then runs
//! a simple per-link closed-loop controller of the kind studied for
//! industrial WSNs: each epoch, every link compares its measured outage
//! probability against a target and nudges its transmit power up or down by
//! a fixed dB step. Because nearby links fade *together* (spatially
//! correlated shadowing/fading is exactly what this network layer models),
//! the controller's convergence differs visibly between tightly packed
//! links and isolated ones — the effect independent-fading simulators miss.
//!
//! Run with: `cargo run --release --example power_control`

use corrfade_models::wsn::LinkCorrelationModel;
use corrfade_network::{NetworkSim, NetworkSimConfig, Topology};
use corrfade_scenarios::DopplerSettings;

/// Outage probability the controller steers every link toward.
const TARGET_OUTAGE: f64 = 0.05;
/// Power step per epoch in dB (classic fixed-step TPC).
const STEP_DB: f64 = 1.0;
/// Number of control epochs.
const EPOCHS: usize = 20;
/// Allowed power range in dB relative to nominal.
const POWER_RANGE_DB: f64 = 12.0;

fn main() {
    let topology = Topology::grid(5, 5, 1.0).expect("valid grid");
    let links = topology.link_count();
    let config = NetworkSimConfig {
        correlation: LinkCorrelationModel::distance_only(1.0),
        doppler: DopplerSettings {
            idft_size: 2048,
            normalized_doppler: 0.05,
            sigma_orig_sq: 0.5,
        },
        ..NetworkSimConfig::default()
    };
    let mut sim = NetworkSim::open(topology, &config, 42).expect("valid network");

    println!("power_control: fixed-step TPC on a 5x5 correlated WSN grid");
    println!(
        "links: {links}, groups: {}, target outage: {TARGET_OUTAGE}, step: {STEP_DB} dB",
        sim.groups().len()
    );
    println!();

    // Per-link transmit power in dB relative to nominal.
    let mut power_db = vec![0.0f64; links];
    let mut converged_at = vec![None::<usize>; links];

    for epoch in 0..EPOCHS {
        sim.advance().expect("advance");
        let mut total_outage = 0.0;
        let mut total_power = 0.0;
        for link in 0..links {
            let gain = 10f64.powf(power_db[link] / 10.0);
            let m = sim.link_metrics_with_power(link, gain).expect("local link");
            total_outage += m.outage_probability;
            total_power += power_db[link];
            // Fixed-step control: too many outages → power up; comfortably
            // under target → power down (save energy).
            if m.outage_probability > TARGET_OUTAGE {
                power_db[link] = (power_db[link] + STEP_DB).min(POWER_RANGE_DB);
                converged_at[link] = None;
            } else {
                if converged_at[link].is_none() {
                    converged_at[link] = Some(epoch);
                }
                if m.outage_probability < TARGET_OUTAGE / 2.0 {
                    power_db[link] = (power_db[link] - STEP_DB).max(-POWER_RANGE_DB);
                }
            }
        }
        println!(
            "epoch {epoch:>2}: mean outage {:.4}, mean tx power {:+.2} dB",
            total_outage / links as f64,
            total_power / links as f64
        );
    }

    println!();
    println!("final per-link state (first 10 links):");
    println!("  link  length  mean SNR   power    outage   LCR/sample  AFD");
    for (link, &db) in power_db.iter().enumerate().take(links.min(10)) {
        let gain = 10f64.powf(db / 10.0);
        let m = sim.link_metrics_with_power(link, gain).expect("local link");
        println!(
            "  {:>4}  {:>6.2}  {:>7.2}dB  {:>+5.1}dB  {:>7.4}  {:>9.5}  {:>6.2}",
            link,
            sim.topology().link_length(link),
            m.mean_snr_db,
            db,
            m.outage_probability,
            m.lcr,
            m.afd
        );
    }
    let settled = converged_at.iter().filter(|c| c.is_some()).count();
    println!();
    println!("{settled}/{links} links at or under the outage target after {EPOCHS} epochs");
}
